// Behavioural tests for the remaining schemes plus the factory/registry.
#include <gtest/gtest.h>

#include "schemes/factory.h"
#include "schemes/scheme.h"
#include "support/dumbbell_fixture.h"

namespace halfback::schemes {
namespace {

using halfback::testing::DumbbellFixture;
using transport::SenderBase;
using namespace halfback::sim::literals;

// ---------------------------------------------------------------- registry

TEST(SchemeRegistryTest, AllSchemesHaveMetadata) {
  EXPECT_EQ(all_schemes().size(), 11u);
  for (const SchemeInfo& i : all_schemes()) {
    EXPECT_NE(i.name, nullptr);
    
    EXPECT_EQ(&info(i.scheme), &i);
  }
}

TEST(SchemeRegistryTest, ParseRoundTrips) {
  for (const SchemeInfo& i : all_schemes()) {
    auto parsed = parse_scheme(i.name);
    ASSERT_TRUE(parsed.has_value()) << i.name;
    EXPECT_EQ(*parsed, i.scheme);
    EXPECT_EQ(parse_scheme(i.display_name), i.scheme);
  }
  EXPECT_FALSE(parse_scheme("quic").has_value());
}

TEST(SchemeRegistryTest, EvaluationSetsAreSubsets) {
  EXPECT_EQ(evaluation_set().size(), 8u);
  EXPECT_EQ(planetlab_set().size(), 6u);
}

// ----------------------------------------------------------------- factory

class FactoryCompletionTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(FactoryCompletionTest, HundredKbFlowCompletesWithFullDelivery) {
  DumbbellFixture f;
  SenderBase& s = f.start(GetParam(), 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete()) << name(GetParam());
  EXPECT_EQ(s.record().scheme, name(GetParam()));
  transport::Receiver* r = f.receiver_for(s.record().flow);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->stats().complete);
  EXPECT_EQ(r->stats().unique_segments, 70u);
  // Sanity: FCT within [2 RTTs, 10 s] for every scheme on a clean path.
  EXPECT_GT(s.record().fct(), 120_ms);
  EXPECT_LT(s.record().fct(), 10_s);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, FactoryCompletionTest,
    ::testing::Values(Scheme::tcp, Scheme::tcp10, Scheme::tcp_cache,
                      Scheme::reactive, Scheme::proactive, Scheme::jumpstart,
                      Scheme::pcp, Scheme::halfback, Scheme::halfback_forward,
                      Scheme::halfback_burst),
    [](const ::testing::TestParamInfo<Scheme>& i) {
      std::string n = name(i.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// ------------------------------------------------------------- TCP-10

TEST(Tcp10Test, FasterThanTcpSlowerThanJumpStart) {
  auto fct = [](Scheme scheme) {
    DumbbellFixture f;
    SenderBase& s = f.start(scheme, 100'000);
    f.sim.run();
    EXPECT_TRUE(s.complete());
    return s.record().fct();
  };
  sim::Time tcp = fct(Scheme::tcp);
  sim::Time tcp10 = fct(Scheme::tcp10);
  sim::Time jumpstart = fct(Scheme::jumpstart);
  EXPECT_LT(tcp10, tcp);
  EXPECT_LT(jumpstart, tcp10);
}

// ---------------------------------------------------------------- Reactive

TEST(ReactiveTest, TailLossAvoidedWithoutTimeout) {
  auto run = [](Scheme scheme) {
    DumbbellFixture f;
    bool dropped = false;
    f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
      // Drop the last segment's first transmission.
      if (!dropped && p.type == net::PacketType::data && p.seq == 9 && !p.is_retx) {
        dropped = true;
        return false;
      }
      return true;
    });
    SenderBase& s = f.start(scheme, 10 * net::kSegmentPayloadBytes);
    f.sim.run();
    EXPECT_TRUE(s.complete());
    return s.record();
  };
  transport::FlowRecord reactive = run(Scheme::reactive);
  transport::FlowRecord tcp = run(Scheme::tcp);
  EXPECT_EQ(reactive.timeouts, 0u);  // the probe preempts the RTO
  EXPECT_GE(tcp.timeouts, 1u);
  EXPECT_LT(reactive.fct(), tcp.fct());
  EXPECT_GE(reactive.normal_retx, 1u);  // the probe itself
}

TEST(ReactiveTest, NoLossMeansNoProbes) {
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::reactive, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_EQ(s.record().normal_retx, 0u);
}

// --------------------------------------------------------------- Proactive

TEST(ProactiveTest, EveryPacketSentTwice) {
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::proactive, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  // One proactive duplicate per original (and per normal retransmission).
  EXPECT_EQ(s.record().proactive_retx, 70u + s.record().normal_retx);
  EXPECT_EQ(s.record().data_packets_sent, 2 * (70u + s.record().normal_retx));
}

TEST(ProactiveTest, DuplicateMasksSingleLoss) {
  DumbbellFixture f;
  bool dropped = false;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::data && p.seq == 9 && !p.is_proactive) {
      dropped = true;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::proactive, 10 * net::kSegmentPayloadBytes);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_EQ(s.record().timeouts, 0u);
  EXPECT_EQ(s.record().normal_retx, 0u);  // the duplicate already covered it
}

// --------------------------------------------------------------- TCP-Cache

TEST(TcpCacheTest, SecondFlowOnPathStartsFromCachedWindow) {
  DumbbellFixture f;
  SenderBase& first = f.start(Scheme::tcp_cache, 100'000);
  f.sim.run();
  ASSERT_TRUE(first.complete());
  ASSERT_NE(f.context.path_cache, nullptr);
  EXPECT_EQ(f.context.path_cache->size(), 1u);

  SenderBase& second = f.start(Scheme::tcp_cache, 100'000);
  f.sim.run();
  ASSERT_TRUE(second.complete());
  EXPECT_LT(second.record().fct(), first.record().fct());
}

TEST(TcpCacheTest, FirstFlowBehavesLikeTcp) {
  DumbbellFixture fc;
  SenderBase& cache = fc.start(Scheme::tcp_cache, 100'000);
  fc.sim.run();

  DumbbellFixture ft;
  SenderBase& tcp = ft.start(Scheme::tcp, 100'000);
  ft.sim.run();

  EXPECT_NEAR(cache.record().fct().to_ms(), tcp.record().fct().to_ms(), 1.0);
}

TEST(TcpCacheTest, CacheIsPerPath) {
  net::DumbbellConfig config;
  config.sender_count = 2;
  config.receiver_count = 2;
  DumbbellFixture f{config};
  SenderBase& first = f.start(Scheme::tcp_cache, 100'000, /*pair=*/0);
  f.sim.run();
  ASSERT_TRUE(first.complete());
  // A different sender/receiver pair must not see pair 0's cache entry.
  SenderBase& other = f.start(Scheme::tcp_cache, 100'000, /*pair=*/1);
  f.sim.run();
  ASSERT_TRUE(other.complete());
  EXPECT_NEAR(other.record().fct().to_ms(), first.record().fct().to_ms(), 5.0);
  EXPECT_EQ(f.context.path_cache->size(), 2u);
}

TEST(TcpCacheTest, AgedEntriesDrawBackToSlowStart) {
  // §6: "Caching schemes will draw back to Slow-Start when the variables
  // are aged."
  DumbbellFixture f;
  f.context.path_cache_max_age = sim::Time::seconds(5);
  SenderBase& first = f.start(Scheme::tcp_cache, 100'000);
  f.sim.run();
  ASSERT_TRUE(first.complete());

  // Well within the horizon: the cache accelerates the second flow.
  SenderBase& warm = f.start(Scheme::tcp_cache, 100'000);
  f.sim.run();
  EXPECT_LT(warm.record().fct(), first.record().fct());

  // Let the entry age out, then start another flow: back to slow start.
  f.sim.run_until(f.sim.now() + 10_s);
  SenderBase& cold = f.start(Scheme::tcp_cache, 100'000);
  f.sim.run();
  ASSERT_TRUE(cold.complete());
  EXPECT_NEAR(cold.record().fct().to_ms(), first.record().fct().to_ms(), 5.0);
}

// --------------------------------------------------------------------- PCP

TEST(PcpTest, RateRampsUpOnIdlePath) {
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::pcp, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_EQ(s.record().normal_retx, 0u);
}

TEST(PcpTest, SlowerThanJumpStartOnCleanPath) {
  auto fct = [](Scheme scheme) {
    DumbbellFixture f;
    SenderBase& s = f.start(scheme, 100'000);
    f.sim.run();
    return s.record().fct();
  };
  // Probing costs rounds: PCP cannot match the pace-everything schemes.
  EXPECT_GT(fct(Scheme::pcp), fct(Scheme::jumpstart) * 1.5);
}

TEST(PcpTest, PacedSendsCauseNoBufferOverflowOnTightBuffer) {
  net::DumbbellConfig config;
  config.bottleneck_buffer_bytes = 15'000;
  DumbbellFixture f{config};
  SenderBase& s = f.start(Scheme::pcp, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  // Paced, delay-sensitive probing keeps loss minimal where the paced-burst
  // schemes lose heavily (paper Fig. 10b: PCP has the fewest retx).
  EXPECT_LE(s.record().normal_retx, 3u);
}

}  // namespace
}  // namespace halfback::schemes
