// Run budgets and the wall-clock watchdog (sim/budget.h).
//
// The deterministic checks (event count, sim horizon, storm detector) must
// trip at the same event on every replay and leave a structured report; the
// watchdog may only abort, never alter a completed run's results.
#include "sim/budget.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>

#include "sim/simulator.h"
#include "sim/time.h"

namespace halfback::sim {
namespace {

/// Schedules itself forever, advancing the sim clock by `step` per event
/// (step == zero models a livelocked timer that never advances time).
struct TickLoop {
  Simulator& simulator;
  Time step;
  std::function<void()> tick;

  explicit TickLoop(Simulator& s, Time step_in) : simulator{s}, step{step_in} {
    tick = [this] { simulator.schedule(step, tick); };
  }
  void start() { simulator.schedule(step, tick); }
};

TEST(BudgetTest, EventBudgetTripsWithAStructuredReport) {
  Simulator simulator{1};
  TickLoop loop{simulator, Time::milliseconds(1)};
  loop.start();

  RunBudget budget;
  budget.max_events = 100;
  BudgetEnforcer enforcer{budget};
  simulator.set_budget(&enforcer);
  simulator.run();

  ASSERT_TRUE(enforcer.tripped());
  const BudgetReport& report = enforcer.report();
  EXPECT_EQ(report.tripped, BudgetTrip::event_count);
  EXPECT_EQ(report.events_executed, 100u);
  EXPECT_EQ(report.pending_events, 1u);  // the next self-rescheduled tick
  ASSERT_FALSE(report.top_pending.empty());
  EXPECT_EQ(report.top_pending.front().count, 1u);
  EXPECT_FALSE(report.top_pending.front().type_name.empty());
  EXPECT_NE(report.summary().find("event_count"), std::string::npos);
}

TEST(BudgetTest, SimHorizonTripsBeforeDispatchingPastIt) {
  Simulator simulator{1};
  TickLoop loop{simulator, Time::milliseconds(10)};
  loop.start();

  RunBudget budget;
  budget.max_sim_time = Time::seconds(1);
  BudgetEnforcer enforcer{budget};
  simulator.set_budget(&enforcer);
  simulator.run();

  ASSERT_TRUE(enforcer.tripped());
  EXPECT_EQ(enforcer.report().tripped, BudgetTrip::sim_horizon);
  // The event past the horizon never ran: the clock stays at or before it.
  EXPECT_LE(simulator.now(), Time::seconds(1));
  EXPECT_EQ(enforcer.report().events_executed, simulator.events_executed());
}

TEST(BudgetTest, StormDetectorTripsOnALivelockedTimerLoop) {
  Simulator simulator{1};
  TickLoop loop{simulator, Time::zero()};  // burns events, clock never moves
  loop.start();

  RunBudget budget;
  budget.storm_window = 64;
  budget.storm_events_per_sim_second = 1e6;
  BudgetEnforcer enforcer{budget};
  simulator.set_budget(&enforcer);
  simulator.run();

  ASSERT_TRUE(enforcer.tripped());
  const BudgetReport& report = enforcer.report();
  EXPECT_EQ(report.tripped, BudgetTrip::storm);
  EXPECT_EQ(report.window_span, Time::zero());
  EXPECT_LT(report.events_executed, 2u * budget.storm_window);
}

TEST(BudgetTest, StormDetectorPassesAHealthyRun) {
  Simulator simulator{1};
  int remaining = 1000;
  std::function<void()> tick = [&] {
    if (--remaining > 0) simulator.schedule(Time::milliseconds(1), tick);
  };
  simulator.schedule(Time::milliseconds(1), tick);

  RunBudget budget;
  budget.storm_window = 100;
  budget.storm_events_per_sim_second = 1e6;  // healthy rate is 1e3
  BudgetEnforcer enforcer{budget};
  simulator.set_budget(&enforcer);
  simulator.run();

  EXPECT_FALSE(enforcer.tripped());
  EXPECT_EQ(simulator.events_executed(), 1000u);
}

TEST(BudgetTest, ATrippedBudgetIsStickyUntilReset) {
  Simulator simulator{1};
  TickLoop loop{simulator, Time::milliseconds(1)};
  loop.start();

  RunBudget budget;
  budget.max_events = 10;
  BudgetEnforcer enforcer{budget};
  simulator.set_budget(&enforcer);
  simulator.run();
  ASSERT_TRUE(enforcer.tripped());
  const std::uint64_t at_trip = simulator.events_executed();

  // A second run() must not dispatch anything while the trip stands.
  simulator.run();
  EXPECT_EQ(simulator.events_executed(), at_trip);
  EXPECT_EQ(enforcer.report().tripped, BudgetTrip::event_count);

  enforcer.reset();
  EXPECT_FALSE(enforcer.tripped());
}

TEST(BudgetTest, AGenerousBudgetLeavesACompletedRunIdentical) {
  const auto drive = [](Simulator& simulator, BudgetEnforcer* enforcer) {
    if (enforcer != nullptr) simulator.set_budget(enforcer);
    int remaining = 500;
    std::function<void()> tick = [&] {
      if (--remaining > 0) simulator.schedule(Time::microseconds(250), tick);
    };
    simulator.schedule(Time::microseconds(250), tick);
    simulator.run();
  };

  Simulator plain{7};
  drive(plain, nullptr);

  RunBudget budget;
  budget.max_events = 1'000'000;
  budget.max_sim_time = Time::seconds(3600);
  budget.storm_window = 100;
  budget.storm_events_per_sim_second = 1e9;
  BudgetEnforcer enforcer{budget};
  Simulator budgeted{7};
  drive(budgeted, &enforcer);

  EXPECT_FALSE(enforcer.tripped());
  EXPECT_EQ(budgeted.events_executed(), plain.events_executed());
  EXPECT_EQ(budgeted.now(), plain.now());
}

TEST(BudgetTest, RunUntilUnderBudgetStillHonorsTheDeadline) {
  Simulator simulator{1};
  TickLoop loop{simulator, Time::milliseconds(1)};
  loop.start();

  BudgetEnforcer enforcer{RunBudget{.max_events = 1'000'000}};
  simulator.set_budget(&enforcer);
  simulator.run_until(Time::milliseconds(50));

  EXPECT_FALSE(enforcer.tripped());
  EXPECT_EQ(simulator.now(), Time::milliseconds(50));
  EXPECT_EQ(simulator.events_executed(), 50u);
}

TEST(WatchdogTest, FiresAndAbortsARunawayRun) {
  Simulator simulator{1};
  TickLoop loop{simulator, Time::nanoseconds(1)};
  loop.start();

  // No deterministic limit would catch this chain before the heat death of
  // the test: only the watchdog's abort request ends the run.
  BudgetEnforcer enforcer{RunBudget{}};
  simulator.set_budget(&enforcer);
  WallClockWatchdog watchdog{simulator, std::chrono::milliseconds(20)};
  simulator.run();
  watchdog.disarm();

  EXPECT_TRUE(watchdog.fired());
  ASSERT_TRUE(enforcer.tripped());
  EXPECT_EQ(enforcer.report().tripped, BudgetTrip::wall_clock);
  EXPECT_GT(simulator.events_executed(), 0u);
}

TEST(WatchdogTest, ACompletedRunIsUntouchedByTheWatchdog) {
  // The tick chain fires during run(), long after setup returns, so its
  // state lives in a struct scoped to the test, not in lambda locals.
  struct BoundedTicks {
    Simulator& simulator;
    int remaining;
    std::function<void()> tick;
    BoundedTicks(Simulator& s, int count) : simulator{s}, remaining{count} {
      tick = [this] {
        if (--remaining > 0) simulator.schedule(Time::milliseconds(1), tick);
      };
      simulator.schedule(Time::milliseconds(1), tick);
    }
  };

  Simulator plain{3};
  BoundedTicks plain_loop{plain, 200};
  plain.run();

  Simulator watched{3};
  BudgetEnforcer enforcer{RunBudget{}};
  watched.set_budget(&enforcer);
  BoundedTicks watched_loop{watched, 200};
  {
    WallClockWatchdog watchdog{watched, std::chrono::seconds(600)};
    watched.run();
    watchdog.disarm();
    EXPECT_FALSE(watchdog.fired());
  }

  EXPECT_FALSE(enforcer.tripped());
  EXPECT_EQ(watched.events_executed(), plain.events_executed());
  EXPECT_EQ(watched.now(), plain.now());
}

TEST(WatchdogTest, DisarmIsIdempotentAndTheDestructorDisarms) {
  Simulator simulator{1};
  WallClockWatchdog watchdog{simulator, std::chrono::seconds(600)};
  watchdog.disarm();
  watchdog.disarm();
  EXPECT_FALSE(watchdog.fired());
  EXPECT_FALSE(simulator.abort_requested());
  // Destructor runs disarm() again on scope exit — must not throw or hang.
}

}  // namespace
}  // namespace halfback::sim
