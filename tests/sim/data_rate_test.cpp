#include "sim/data_rate.h"

#include <gtest/gtest.h>

namespace halfback::sim {
namespace {

using namespace halfback::sim::literals;

TEST(DataRateTest, Constructors) {
  EXPECT_DOUBLE_EQ(DataRate::bits_per_second(1e6).bps(), 1e6);
  EXPECT_DOUBLE_EQ(DataRate::kilobits_per_second(1).bps(), 1e3);
  EXPECT_DOUBLE_EQ(DataRate::megabits_per_second(15).bps(), 15e6);
  EXPECT_DOUBLE_EQ(DataRate::gigabits_per_second(1).bps(), 1e9);
}

TEST(DataRateTest, TransmissionTime) {
  // 1500 bytes at 15 Mbps = 12000 bits / 15e6 bps = 0.8 ms.
  auto rate = DataRate::megabits_per_second(15);
  EXPECT_EQ(rate.transmission_time(1500), Time::microseconds(800));
}

TEST(DataRateTest, BytesPer) {
  // 100 KB over 60 ms.
  auto rate = DataRate::bytes_per(100'000, 60_ms);
  EXPECT_NEAR(rate.bytes_per_second(), 100'000 / 0.06, 1.0);
}

TEST(DataRateTest, ZeroRate) {
  DataRate r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_FALSE(DataRate::megabits_per_second(1).is_zero());
}

TEST(DataRateTest, Arithmetic) {
  auto r = DataRate::megabits_per_second(10);
  EXPECT_DOUBLE_EQ((r * 2.0).bps(), 20e6);
  EXPECT_DOUBLE_EQ((r / 2.0).bps(), 5e6);
  EXPECT_DOUBLE_EQ(r / DataRate::megabits_per_second(5), 2.0);
  EXPECT_LT(DataRate::megabits_per_second(5), r);
}

TEST(DataRateTest, BytesPerSecond) {
  EXPECT_DOUBLE_EQ(DataRate::megabits_per_second(8).bytes_per_second(), 1e6);
}

}  // namespace
}  // namespace halfback::sim
