#include "sim/dispatch_profiler.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/timer.h"

namespace halfback::sim {
namespace {

struct KindA {};
struct KindB {};

TEST(DispatchProfiler, AggregatesByTypeAndOrdersRowsByCount) {
  DispatchProfiler profiler;
  profiler.note_dispatch(typeid(KindA), 10);
  profiler.note_dispatch(typeid(KindA), 5);
  profiler.note_dispatch(typeid(KindB), 100);
  EXPECT_EQ(profiler.total_dispatches(), 3u);

  const std::vector<DispatchProfiler::Row> rows = profiler.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].count, 2u);   // KindA: most dispatches first
  EXPECT_EQ(rows[0].cycles, 15u);
  EXPECT_EQ(rows[1].count, 1u);
  EXPECT_EQ(rows[1].cycles, 100u);
  // Demangled names, not raw mangles.
  EXPECT_NE(rows[0].type_name.find("KindA"), std::string::npos);
  EXPECT_NE(rows[1].type_name.find("KindB"), std::string::npos);
}

TEST(DispatchProfiler, CycleSamplingTicksAreAFunctionOfTheDispatchIndex) {
  DispatchProfiler profiler;
  std::vector<std::uint64_t> ticks;
  for (std::uint64_t i = 0; i < 2 * DispatchProfiler::kSamplePeriod + 2; ++i) {
    if (profiler.should_sample()) ticks.push_back(i);
    profiler.note_dispatch(typeid(KindA), 0);
  }
  const std::vector<std::uint64_t> expected{0, DispatchProfiler::kSamplePeriod,
                                            2 * DispatchProfiler::kSamplePeriod};
  EXPECT_EQ(ticks, expected);
  // Counts stay exact regardless of sampling.
  EXPECT_EQ(profiler.total_dispatches(),
            2 * DispatchProfiler::kSamplePeriod + 2);
}

TEST(DispatchProfiler, ResetClearsEverything) {
  DispatchProfiler profiler;
  profiler.note_dispatch(typeid(KindA), 10);
  profiler.reset();
  EXPECT_EQ(profiler.total_dispatches(), 0u);
  EXPECT_TRUE(profiler.rows().empty());
}

TEST(DispatchProfiler, CountsDispatchesOnTheInstrumentedLoop) {
  Simulator simulator{1};
  DispatchProfiler profiler;
  simulator.set_profiler(&profiler);
  int fired = 0;
  Timer timer{simulator, [&] { ++fired; }};
  timer.schedule_at(Time::milliseconds(1));
  Timer again{simulator, [&] { ++fired; }};
  again.schedule_at(Time::milliseconds(2));
  simulator.run_until(Time::milliseconds(10));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(profiler.total_dispatches(), 2u);
  std::uint64_t counted = 0;
  for (const DispatchProfiler::Row& row : profiler.rows()) {
    counted += row.count;
  }
  EXPECT_EQ(counted, 2u);
}

TEST(DispatchProfiler, ProfilerDoesNotPerturbTheSimulation) {
  // Same schedule with and without a profiler: identical event count and
  // identical final clock (the observe-only contract).
  auto run = [](DispatchProfiler* profiler) {
    Simulator simulator{7};
    if (profiler != nullptr) simulator.set_profiler(profiler);
    int fired = 0;
    Timer timer{simulator, [&] { ++fired; }};
    for (int i = 1; i <= 64; ++i) {
      timer.schedule_at(Time::microseconds(i * 10));
      simulator.run_until(Time::microseconds(i * 10));
    }
    return std::pair<std::uint64_t, std::int64_t>{
        simulator.events_executed(), simulator.now().ns()};
  };
  DispatchProfiler profiler;
  const auto plain = run(nullptr);
  const auto profiled = run(&profiler);
  EXPECT_EQ(plain, profiled);
  EXPECT_EQ(profiler.total_dispatches(), plain.first);
}

}  // namespace
}  // namespace halfback::sim
