#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace halfback::sim {
namespace {

using namespace halfback::sim::literals;

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.next_time(), std::logic_error);
  EXPECT_THROW(q.run_next(), std::logic_error);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3_ms, [&] { order.push_back(3); });
  q.schedule(1_ms, [&] { order.push_back(1); });
  q.schedule(2_ms, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1_ms, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(7_ms, [] {});
  EXPECT_EQ(q.next_time(), 7_ms);
  EXPECT_EQ(q.run_next(), 7_ms);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(1_ms, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelMiddleEventSkipsOnlyIt) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1_ms, [&] { order.push_back(1); });
  EventHandle h = q.schedule(2_ms, [&] { order.push_back(2); });
  q.schedule(3_ms, [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  int count = 0;
  EventHandle h = q.schedule(1_ms, [&] { ++count; });
  q.run_next();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or change anything
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1_ms, [&] {
    order.push_back(1);
    q.schedule(2_ms, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue q;
  bool ran = false;
  q.schedule(1_ms, [&] { ran = true; });
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace halfback::sim
