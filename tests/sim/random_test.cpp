#include "sim/random.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace halfback::sim {
namespace {

TEST(RandomTest, DeterministicFromSeed) {
  Random a{42};
  Random b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a{1};
  Random b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomTest, ForkIsIndependentAndDeterministic) {
  Random parent1{7};
  Random parent2{7};
  Random child1 = parent1.fork(3);
  Random child2 = parent2.fork(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(), child2.uniform());
  }
  // Different salts give different streams.
  Random parent3{7};
  Random other = parent3.fork(4);
  int equal = 0;
  Random parent4{7};
  Random same_salt = parent4.fork(3);
  for (int i = 0; i < 50; ++i) {
    if (other.uniform() == same_salt.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomTest, UniformRange) {
  Random r{9};
  for (int i = 0; i < 1000; ++i) {
    double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RandomTest, UniformIntInclusive) {
  Random r{10};
  std::array<int, 4> seen{};
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int count : seen) EXPECT_GT(count, 100);
}

TEST(RandomTest, ExponentialMean) {
  Random r{11};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RandomTest, ExponentialTime) {
  Random r{12};
  Time total;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += r.exponential(Time::milliseconds(10));
  EXPECT_NEAR(total.to_ms() / n, 10.0, 0.5);
}

TEST(RandomTest, BernoulliProbability) {
  Random r{13};
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RandomTest, ParetoBounds) {
  Random r{14};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
  }
}

TEST(RandomTest, LogUniformBounds) {
  Random r{15};
  for (int i = 0; i < 1000; ++i) {
    double x = r.log_uniform(0.2, 400.0);
    EXPECT_GE(x, 0.2);
    EXPECT_LE(x, 400.0);
  }
}

TEST(RandomTest, LogUniformSpreadsAcrossDecades) {
  Random r{16};
  int low = 0;   // [0.2, 2)
  int high = 0;  // [40, 400)
  for (int i = 0; i < 10000; ++i) {
    double x = r.log_uniform(0.2, 400.0);
    if (x < 2.0) ++low;
    if (x >= 40.0) ++high;
  }
  // Log-uniform over 0.2..400 has ~30% of mass per decade-ish band.
  EXPECT_GT(low, 2000);
  EXPECT_GT(high, 2000);
}

TEST(RandomTest, WeightedIndex) {
  Random r{17};
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> seen{};
  for (int i = 0; i < 4000; ++i) ++seen[r.weighted_index(weights)];
  EXPECT_EQ(seen[1], 0);
  EXPECT_NEAR(static_cast<double>(seen[2]) / seen[0], 3.0, 0.5);
}

TEST(RandomTest, WeightedIndexRejectsEmptyTotal) {
  Random r{18};
  std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(r.weighted_index(weights), std::invalid_argument);
}

TEST(RandomTest, ShuffleKeepsElements) {
  Random r{19};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace halfback::sim
