#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace halfback::sim {
namespace {

using namespace halfback::sim::literals;

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time::zero());
}

TEST(SimulatorTest, RunAdvancesClock) {
  Simulator sim;
  Time seen;
  sim.schedule(5_ms, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 5_ms);
  EXPECT_EQ(sim.now(), 5_ms);
}

TEST(SimulatorTest, RelativeSchedulingChains) {
  Simulator sim;
  std::vector<double> times_ms;
  sim.schedule(1_ms, [&] {
    times_ms.push_back(sim.now().to_ms());
    sim.schedule(1_ms, [&] { times_ms.push_back(sim.now().to_ms()); });
  });
  sim.run();
  ASSERT_EQ(times_ms.size(), 2u);
  EXPECT_DOUBLE_EQ(times_ms[0], 1.0);
  EXPECT_DOUBLE_EQ(times_ms[1], 2.0);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int ran = 0;
  sim.schedule(1_ms, [&] { ++ran; });
  sim.schedule(10_ms, [&] { ++ran; });
  sim.run_until(5_ms);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 5_ms);
  sim.run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), 10_ms);
}

TEST(SimulatorTest, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool ran = false;
  sim.schedule(5_ms, [&] { ran = true; });
  sim.run_until(5_ms);
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int ran = 0;
  sim.schedule(1_ms, [&] {
    ++ran;
    sim.stop();
  });
  sim.schedule(2_ms, [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  // Resuming picks the remaining event back up.
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  Time seen;
  sim.schedule_at(7_ms, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 7_ms);
}

TEST(SimulatorTest, CountsEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(Time::milliseconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulatorTest, RandomIsSeeded) {
  Simulator a{123};
  Simulator b{123};
  EXPECT_DOUBLE_EQ(a.random().uniform(), b.random().uniform());
}

}  // namespace
}  // namespace halfback::sim
