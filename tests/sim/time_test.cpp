#include "sim/time.h"

#include <gtest/gtest.h>

namespace halfback::sim {
namespace {

using namespace halfback::sim::literals;

TEST(TimeTest, DefaultIsZero) {
  Time t;
  EXPECT_TRUE(t.is_zero());
  EXPECT_EQ(t.ns(), 0);
}

TEST(TimeTest, NamedConstructorsAgree) {
  EXPECT_EQ(Time::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Time::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ(Time::microseconds(1).ns(), 1'000);
  EXPECT_EQ(Time::nanoseconds(7).ns(), 7);
  EXPECT_EQ(Time::seconds(0.5), Time::milliseconds(500));
}

TEST(TimeTest, Literals) {
  EXPECT_EQ(5_ms, Time::milliseconds(5));
  EXPECT_EQ(2_s, Time::seconds(2));
  EXPECT_EQ(1.5_ms, Time::microseconds(1500));
  EXPECT_EQ(250_us, Time::microseconds(250));
  EXPECT_EQ(10_ns, Time::nanoseconds(10));
}

TEST(TimeTest, Arithmetic) {
  Time a = 10_ms;
  Time b = 4_ms;
  EXPECT_EQ(a + b, 14_ms);
  EXPECT_EQ(a - b, 6_ms);
  EXPECT_EQ(a * 2.0, 20_ms);
  EXPECT_EQ(a / 2.0, 5_ms);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  a += b;
  EXPECT_EQ(a, 14_ms);
  a -= b;
  EXPECT_EQ(a, 10_ms);
}

TEST(TimeTest, Ordering) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_LE(1_ms, 1_ms);
  EXPECT_LT(1_s, Time::infinity());
}

TEST(TimeTest, Conversions) {
  EXPECT_DOUBLE_EQ((1500_ms).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ((1500_us).to_ms(), 1.5);
  EXPECT_DOUBLE_EQ((1500_ns).to_us(), 1.5);
}

TEST(TimeTest, InfinityIsSticky) {
  EXPECT_TRUE(Time::infinity().is_infinite());
  EXPECT_FALSE((1_s).is_infinite());
}

TEST(TimeTest, ToString) {
  EXPECT_EQ((1500_ms).to_string(), "1.500s");
  EXPECT_EQ((12.5_ms).to_string(), "12.500ms");
  EXPECT_EQ((250_us).to_string(), "250.000us");
  EXPECT_EQ((12_ns).to_string(), "12ns");
  EXPECT_EQ(Time::infinity().to_string(), "+inf");
}

TEST(TimeTest, NegativeDurationsBehave) {
  Time d = 1_ms - 2_ms;
  EXPECT_LT(d, Time::zero());
  EXPECT_EQ(d + 2_ms, 1_ms);
}

}  // namespace
}  // namespace halfback::sim
