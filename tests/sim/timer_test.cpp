// Semantics of the reusable intrusive Timer (and the intrusive event API
// underneath it): cancel-after-fire, in-place reschedule in both
// directions, cancel from inside the timer's own callback, and run_until
// landing exactly on a deadline.
#include "sim/timer.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace halfback::sim {
namespace {

TEST(Timer, FiresOnceAtDeadline) {
  Simulator simulator;
  int fired = 0;
  Timer timer{simulator, [&] { ++fired; }};
  timer.schedule_after(Time::microseconds(50));
  EXPECT_TRUE(timer.pending());
  simulator.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.pending());
  EXPECT_EQ(simulator.now(), Time::microseconds(50));
}

TEST(Timer, CancelPreventsFiring) {
  Simulator simulator;
  int fired = 0;
  Timer timer{simulator, [&] { ++fired; }};
  timer.schedule_after(Time::microseconds(50));
  timer.cancel();
  EXPECT_FALSE(timer.pending());
  simulator.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CancelAfterFireIsInert) {
  Simulator simulator;
  int fired = 0;
  Timer timer{simulator, [&] { ++fired; }};
  timer.schedule_after(Time::microseconds(10));
  simulator.run();
  ASSERT_EQ(fired, 1);
  // The slot may have been recycled by other schedules; cancelling a timer
  // that already fired must be a no-op, not a stray removal.
  timer.cancel();
  timer.cancel();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.pending());
}

TEST(Timer, RescheduleEarlierMovesTheDeadline) {
  Simulator simulator;
  std::vector<Time> fire_times;
  Timer timer{simulator, [&] { fire_times.push_back(simulator.now()); }};
  timer.schedule_after(Time::milliseconds(100));
  timer.schedule_after(Time::milliseconds(1));  // re-arm earlier, in place
  simulator.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], Time::milliseconds(1));
}

TEST(Timer, RescheduleLaterMovesTheDeadline) {
  Simulator simulator;
  std::vector<Time> fire_times;
  Timer timer{simulator, [&] { fire_times.push_back(simulator.now()); }};
  timer.schedule_after(Time::milliseconds(1));
  timer.schedule_after(Time::milliseconds(100));  // re-arm later, in place
  simulator.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], Time::milliseconds(100));
}

TEST(Timer, RescheduleMovesToBackOfFifoTie) {
  // A reschedule counts as a fresh scheduling: at an equal deadline the
  // re-armed timer fires after timers scheduled before the re-arm.
  Simulator simulator;
  std::vector<int> order;
  Timer a{simulator, [&] { order.push_back(1); }};
  Timer b{simulator, [&] { order.push_back(2); }};
  a.schedule_after(Time::microseconds(10));
  b.schedule_after(Time::microseconds(10));
  a.schedule_after(Time::microseconds(10));  // re-arm: moves behind b
  simulator.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(Timer, CancelFromInsideOwnCallbackIsSafe) {
  Simulator simulator;
  int fired = 0;
  Timer timer;
  timer.bind(simulator, [&] {
    ++fired;
    timer.cancel();  // already dequeued at fire time; must be a no-op
  });
  timer.schedule_after(Time::microseconds(10));
  simulator.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.pending());
}

TEST(Timer, ReschedulesItselfFromItsOwnCallback) {
  Simulator simulator;
  int fired = 0;
  Timer timer;
  timer.bind(simulator, [&] {
    if (++fired < 5) timer.schedule_after(Time::microseconds(10));
  });
  timer.schedule_after(Time::microseconds(10));
  simulator.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(simulator.now(), Time::microseconds(50));
}

TEST(Timer, DestroyingPendingTimerRemovesItFromTheQueue) {
  Simulator simulator;
  int fired = 0;
  {
    Timer timer{simulator, [&] { ++fired; }};
    timer.schedule_after(Time::microseconds(10));
  }
  EXPECT_TRUE(simulator.queue().empty());
  simulator.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RunUntilLandingExactlyOnDeadlineFiresTheTimer) {
  Simulator simulator;
  int fired = 0;
  Timer timer{simulator, [&] { ++fired; }};
  timer.schedule_after(Time::milliseconds(5));
  // run_until is inclusive: an event at exactly the deadline runs, and the
  // clock finishes at the deadline, not beyond it.
  simulator.run_until(Time::milliseconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.now(), Time::milliseconds(5));
}

TEST(Timer, RunUntilBeforeDeadlineLeavesTimerPending) {
  Simulator simulator;
  int fired = 0;
  Timer timer{simulator, [&] { ++fired; }};
  timer.schedule_after(Time::milliseconds(5));
  simulator.run_until(Time::milliseconds(4));
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(timer.pending());
  EXPECT_EQ(simulator.now(), Time::milliseconds(4));
  simulator.run_until(Time::milliseconds(5));
  EXPECT_EQ(fired, 1);
}

TEST(Timer, SchedulingIsAllocationFreeInSteadyState) {
  // The shim slab must not grow while intrusive timers churn.
  Simulator simulator;
  int fired = 0;
  Timer timer;
  timer.bind(simulator, [&] {
    if (++fired < 1000) timer.schedule_after(Time::microseconds(1));
  });
  timer.schedule_after(Time::microseconds(1));
  simulator.run();
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(simulator.queue().shim_slab_size(), 0u);
}

}  // namespace
}  // namespace halfback::sim
