#include "stats/ascii_plot.h"

#include <gtest/gtest.h>

namespace halfback::stats {
namespace {

TEST(AsciiPlotTest, EmptyInputHandled) {
  EXPECT_EQ(ascii_plot({}), "(no data)\n");
  EXPECT_EQ(ascii_plot({{"empty", {}}}), "(no data)\n");
}

TEST(AsciiPlotTest, SinglePointRenders) {
  auto out = ascii_plot({{"p", {{1.0, 2.0}}}});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = p"), std::string::npos);
}

TEST(AsciiPlotTest, RisingLineFillsDiagonal) {
  PlotSeries s{"line", {}};
  for (int i = 0; i <= 10; ++i) s.points.emplace_back(i, i);
  PlotOptions opt;
  opt.width = 40;
  opt.height = 10;
  auto out = ascii_plot({s}, opt);
  // Top row contains the max, bottom row the min.
  auto first_line = out.substr(0, out.find('\n'));
  EXPECT_NE(first_line.find('*'), std::string::npos);
  // The glyph appears many times (interpolation fills the line).
  EXPECT_GT(std::count(out.begin(), out.end(), '*'), 20);
}

TEST(AsciiPlotTest, MultipleSeriesGetDistinctGlyphs) {
  PlotSeries a{"alpha", {{0, 0}, {1, 1}}};
  PlotSeries b{"beta", {{0, 1}, {1, 0}}};
  auto out = ascii_plot({a, b});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("* = alpha"), std::string::npos);
  EXPECT_NE(out.find("o = beta"), std::string::npos);
}

TEST(AsciiPlotTest, AxisLabelsAndTitle) {
  PlotOptions opt;
  opt.title = "My Figure";
  opt.x_label = "utilization";
  opt.y_label = "fct_ms";
  auto out = ascii_plot({{"s", {{0, 0}, {1, 1}}}}, opt);
  EXPECT_EQ(out.find("My Figure"), 0u);
  EXPECT_NE(out.find("x: utilization"), std::string::npos);
  EXPECT_NE(out.find("y: fct_ms"), std::string::npos);
}

TEST(AsciiPlotTest, AxisEndpointsPrinted) {
  auto out = ascii_plot({{"s", {{2.0, 10.0}, {8.0, 50.0}}}});
  EXPECT_NE(out.find("50.00"), std::string::npos);  // y max
  EXPECT_NE(out.find("10.00"), std::string::npos);  // y min
  EXPECT_NE(out.find("2.00"), std::string::npos);   // x min
  EXPECT_NE(out.find("8.00"), std::string::npos);   // x max
}

TEST(AsciiPlotTest, LogXHandlesDecades) {
  PlotSeries s{"sizes", {{100, 1}, {1000, 2}, {10000, 3}, {100000, 4}}};
  PlotOptions opt;
  opt.log_x = true;
  auto out = ascii_plot({s}, opt);
  EXPECT_NE(out.find('*'), std::string::npos);
  // Endpoint label shows the de-logged value.
  EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(AsciiPlotTest, ConstantSeriesDoesNotDivideByZero) {
  auto out = ascii_plot({{"flat", {{0, 5}, {1, 5}, {2, 5}}}});
  EXPECT_NE(out.find('*'), std::string::npos);
}

}  // namespace
}  // namespace halfback::stats
