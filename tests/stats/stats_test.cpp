// Tests for TimeSeries, Table, and feasible-capacity detection.
#include <gtest/gtest.h>

#include "stats/feasible_capacity.h"
#include "stats/table.h"
#include "stats/time_series.h"

namespace halfback::stats {
namespace {

using namespace halfback::sim::literals;

TEST(TimeSeriesTest, BucketsBytesByTime) {
  TimeSeries ts{60_ms};
  ts.add_bytes(10_ms, 7500);    // bucket 0
  ts.add_bytes(70_ms, 15000);   // bucket 1
  ts.add_bytes(119_ms, 7500);   // bucket 1
  auto samples = ts.throughput();
  ASSERT_EQ(samples.size(), 2u);
  // 7500 B / 60 ms = 1 Mbps.
  EXPECT_NEAR(samples[0].mbps, 1.0, 1e-9);
  EXPECT_NEAR(samples[1].mbps, 3.0, 1e-9);
  EXPECT_EQ(ts.total_bytes(), 30000u);
}

TEST(TimeSeriesTest, GapsAreZero) {
  TimeSeries ts{60_ms};
  ts.add_bytes(sim::Time::zero(), 100);
  ts.add_bytes(200_ms, 100);  // bucket 3
  auto samples = ts.throughput();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_DOUBLE_EQ(samples[1].mbps, 0.0);
  EXPECT_DOUBLE_EQ(samples[2].mbps, 0.0);
}

TEST(TimeSeriesTest, NegativeTimesIgnored) {
  TimeSeries ts{60_ms};
  ts.add_bytes(sim::Time::milliseconds(-5), 100);
  EXPECT_EQ(ts.total_bytes(), 0u);
}

TEST(TableTest, AlignsColumns) {
  Table t{{"scheme", "fct"}};
  t.add_row({"tcp", "123.4"});
  t.add_row({"halfback", "56.7"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("scheme"), std::string::npos);
  EXPECT_NE(s.find("halfback"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
}

TEST(TableTest, CsvRendering) {
  Table t{{"scheme", "fct"}};
  t.add_row({"tcp", "123.4"});
  t.add_row({"half,back", "a \"quoted\" cell"});
  EXPECT_EQ(t.to_csv(),
            "scheme,fct\n"
            "tcp,123.4\n"
            "\"half,back\",\"a \"\"quoted\"\" cell\"\n");
}

TEST(TableTest, WriteCsvRoundTrips) {
  Table t{{"a", "b"}};
  t.add_row({"1", "2"});
  const std::string path = ::testing::TempDir() + "/halfback_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  EXPECT_STREQ(buf, "a,b\n1,2\n");
}

TEST(TableTest, WriteCsvFailsGracefully) {
  Table t{{"a"}};
  EXPECT_FALSE(t.write_csv("/nonexistent-dir/x.csv"));
}

TEST(FeasibleCapacityTest, DetectsCollapsePoint) {
  std::vector<SweepPoint> sweep{
      {0.1, 100}, {0.3, 110}, {0.5, 130}, {0.7, 900}, {0.9, 5000}};
  EXPECT_DOUBLE_EQ(feasible_capacity(sweep), 0.5);
}

TEST(FeasibleCapacityTest, NoCollapseGivesMaxUtilization) {
  std::vector<SweepPoint> sweep{{0.1, 100}, {0.5, 150}, {0.9, 250}};
  EXPECT_DOUBLE_EQ(feasible_capacity(sweep), 0.9);
}

TEST(FeasibleCapacityTest, CollapseIsMonotone) {
  // A dip back below the threshold after collapse must not resurrect
  // feasibility.
  std::vector<SweepPoint> sweep{{0.1, 100}, {0.3, 900}, {0.5, 120}};
  EXPECT_DOUBLE_EQ(feasible_capacity(sweep), 0.1);
}

TEST(FeasibleCapacityTest, AbsoluteCriterion) {
  std::vector<SweepPoint> sweep{{0.1, 400}, {0.3, 700}, {0.5, 1100}};
  CollapseCriterion c;
  c.fct_factor = 100.0;   // relative never triggers
  c.fct_absolute = 1000;  // absolute triggers at 0.5
  EXPECT_DOUBLE_EQ(feasible_capacity(sweep, c), 0.3);
}

TEST(FeasibleCapacityTest, UnsortedInputHandled) {
  std::vector<SweepPoint> sweep{{0.9, 5000}, {0.1, 100}, {0.5, 120}};
  EXPECT_DOUBLE_EQ(feasible_capacity(sweep), 0.5);
}

TEST(FeasibleCapacityTest, FirstPointCollapsedGivesZero) {
  std::vector<SweepPoint> sweep{{0.1, 2000}, {0.3, 3000}};
  CollapseCriterion c;
  c.fct_absolute = 1000;
  EXPECT_DOUBLE_EQ(feasible_capacity(sweep, c), 0.0);
}

TEST(FeasibleCapacityTest, EmptySweepThrows) {
  EXPECT_THROW(feasible_capacity({}), std::invalid_argument);
}

}  // namespace
}  // namespace halfback::stats
