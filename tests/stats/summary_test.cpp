#include "stats/summary.h"

#include <gtest/gtest.h>

namespace halfback::stats {
namespace {

Summary make_summary(std::initializer_list<double> values) {
  Summary s;
  for (double v : values) s.add(v);
  return s;
}

TEST(SummaryTest, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.percentile(50), std::logic_error);
}

TEST(SummaryTest, BasicMoments) {
  Summary s = make_summary({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(SummaryTest, PercentileInterpolates) {
  Summary s = make_summary({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(SummaryTest, PercentileSingleSample) {
  Summary s = make_summary({7});
  EXPECT_DOUBLE_EQ(s.percentile(99), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, PercentileRangeChecked) {
  Summary s = make_summary({1, 2});
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(SummaryTest, AddAfterQueryResorts) {
  Summary s = make_summary({3, 1});
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SummaryTest, CdfCoversAllMass) {
  Summary s;
  for (int i = 1; i <= 1000; ++i) s.add(i);
  auto cdf = s.cdf(100);
  EXPECT_LE(cdf.size(), 102u);
  EXPECT_DOUBLE_EQ(cdf.back().percent, 100.0);
  // Monotone in both coordinates.
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].percent, cdf[i - 1].percent);
  }
  // Median point lands near 500.
  for (const auto& p : cdf) {
    if (p.percent >= 50.0) {
      EXPECT_NEAR(p.value, 500.0, 15.0);
      break;
    }
  }
}

TEST(SummaryTest, CcdfComplementsCdf) {
  Summary s = make_summary({1, 2, 3, 4});
  auto cdf = s.cdf();
  auto ccdf = s.ccdf();
  ASSERT_EQ(cdf.size(), ccdf.size());
  for (std::size_t i = 0; i < cdf.size(); ++i) {
    EXPECT_DOUBLE_EQ(cdf[i].percent + ccdf[i].percent, 100.0);
  }
}

TEST(SummaryTest, JainFairnessIndex) {
  std::vector<double> equal{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(Summary::jain_fairness(equal), 1.0);
  std::vector<double> one_hog{10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(Summary::jain_fairness(one_hog), 0.25);  // 1/n
  std::vector<double> mild{4, 6};
  EXPECT_NEAR(Summary::jain_fairness(mild), 100.0 / (2 * 52.0), 1e-12);
  std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(Summary::jain_fairness(zeros), 1.0);
  EXPECT_THROW(Summary::jain_fairness({}), std::logic_error);
}

TEST(SummaryTest, FractionAtMost) {
  Summary s = make_summary({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(s.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(10.0), 1.0);
}

}  // namespace
}  // namespace halfback::stats
