// Shared test harness: a one-sender dumbbell with transport agents and a
// scheme factory, used across scheme, integration and property tests.
#pragma once

#include <memory>
#include <vector>

#include "net/topology.h"
#include "schemes/factory.h"
#include "sim/simulator.h"
#include "transport/agent.h"

namespace halfback::testing {

/// A dumbbell network with one agent per host and convenience helpers to
/// launch flows of any scheme between host i pairs.
struct DumbbellFixture {
  sim::Simulator sim;
  net::Network net;
  net::Dumbbell dumbbell;
  schemes::SchemeContext context;
  std::vector<std::unique_ptr<transport::TransportAgent>> sender_agents;
  std::vector<std::unique_ptr<transport::TransportAgent>> receiver_agents;
  net::FlowId next_flow = 1;

  explicit DumbbellFixture(net::DumbbellConfig config = {}, std::uint64_t seed = 1)
      : sim{seed}, net{sim}, dumbbell{net::build_dumbbell(net, config)} {
    for (net::NodeId id : dumbbell.senders) {
      sender_agents.push_back(std::make_unique<transport::TransportAgent>(sim, net, id));
    }
    for (net::NodeId id : dumbbell.receivers) {
      receiver_agents.push_back(
          std::make_unique<transport::TransportAgent>(sim, net, id));
    }
  }

  /// Start a flow of `scheme` from sender host `pair` to receiver host
  /// `pair` (mod the host counts). Returns the live sender.
  transport::SenderBase& start(schemes::Scheme scheme, std::uint64_t bytes,
                               std::size_t pair = 0) {
    const std::size_t s = pair % sender_agents.size();
    const std::size_t r = pair % receiver_agents.size();
    auto sender = schemes::make_sender(
        scheme, context, sim, net.node(dumbbell.senders[s]), dumbbell.receivers[r],
        next_flow++, bytes);
    return sender_agents[s]->start_flow(std::move(sender));
  }

  transport::Receiver* receiver_for(net::FlowId flow) {
    for (auto& agent : receiver_agents) {
      if (transport::Receiver* r = agent->receiver(flow)) return r;
    }
    return nullptr;
  }
};

}  // namespace halfback::testing
