// Exporter contracts: byte-identical output across same-seed runs, golden
// histogram bucket edges, and the shape of each text format.
#include "telemetry/export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/emulab.h"
#include "telemetry/hub.h"
#include "telemetry/manifest.h"

namespace halfback::telemetry {
namespace {

using exp::EmulabRunner;
using exp::WorkloadPart;

/// A small but non-trivial Emulab run with telemetry installed; returns the
/// serialized exporter outputs. Fresh hub + runner per call so two calls
/// share no state.
struct ExportedRun {
  std::string metrics;
  std::string trace;
  std::string hub_trace;  ///< full-hub overload: tape events + span events
  std::string spans;
  std::string series;
  std::string prometheus;
  std::string manifest;
};

ExportedRun run_and_export() {
  Hub hub;
  EmulabRunner::Config config;
  config.seed = 11;
  config.dumbbell.sender_count = 2;
  config.dumbbell.receiver_count = 2;
  config.drain = sim::Time::seconds(10);
  config.telemetry = &hub;

  std::vector<WorkloadPart> parts(1);
  parts[0].scheme = schemes::Scheme::halfback;
  for (int i = 0; i < 4; ++i) {
    parts[0].schedule.push_back(workload::FlowArrival{
        sim::Time::milliseconds(25.0 * i), /*bytes=*/40'000});
  }

  EmulabRunner runner{config};
  const exp::RunResult run = runner.run(parts);

  ExportedRun out;
  out.metrics = metrics_jsonl(hub.registry());
  out.trace = chrome_trace_json(hub.recorder(), run.sim_end);
  out.hub_trace = chrome_trace_json(hub, run.sim_end);
  out.spans = spans_jsonl(hub.spans(), run.sim_end);
  out.series = timeseries_jsonl(hub);
  out.prometheus = prometheus_text(hub.registry());
  out.manifest = manifest_json(runner.manifest(run, "emulab"), &hub.registry());
  return out;
}

TEST(ExportDeterminism, SameSeedRunsAreByteIdentical) {
  const ExportedRun first = run_and_export();
  const ExportedRun second = run_and_export();
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.hub_trace, second.hub_trace);
  EXPECT_EQ(first.spans, second.spans);
  EXPECT_EQ(first.series, second.series);
  EXPECT_EQ(first.prometheus, second.prometheus);
  EXPECT_EQ(first.manifest, second.manifest);
}

TEST(ExportDeterminism, BucketEdgesMatchGoldenFile) {
  // The golden file was generated from the documented closed form, not from
  // this code, so it catches a bucketing change from either side.
  ASSERT_EQ(Histogram::kDefaultSubBucketBits, 3u)
      << "default changed: regenerate bucket_edges_k3.txt deliberately";
  std::ifstream golden(std::string{HALFBACK_TELEMETRY_GOLDEN} +
                       "/bucket_edges_k3.txt");
  ASSERT_TRUE(golden.is_open());
  std::string line;
  std::size_t checked = 0;
  while (std::getline(golden, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields{line};
    std::size_t index = 0;
    std::uint64_t lower = 0;
    std::uint64_t upper = 0;
    ASSERT_TRUE(fields >> index >> lower >> upper) << line;
    EXPECT_EQ(Histogram::bucket_lower(index, 3), lower) << "index " << index;
    EXPECT_EQ(Histogram::bucket_upper(index, 3), upper) << "index " << index;
    ++checked;
  }
  EXPECT_EQ(checked, 128u);
}

TEST(MetricsJsonl, OneValidObjectPerMetricInRegistrationOrder) {
  MetricRegistry registry;
  registry.counter("z.first", "registered first")->add(3);
  registry.gauge("a.second", "registered second")->set(1.5);
  registry.histogram("m.third", "registered third")->record(42);

  const std::string out = metrics_jsonl(registry);
  std::istringstream lines{out};
  std::vector<std::string> v;
  for (std::string line; std::getline(lines, line);) v.push_back(line);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NE(v[0].find("\"name\":\"z.first\""), std::string::npos) << v[0];
  EXPECT_NE(v[0].find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(v[0].find("\"value\":3"), std::string::npos);
  EXPECT_NE(v[1].find("\"name\":\"a.second\""), std::string::npos) << v[1];
  EXPECT_NE(v[2].find("\"name\":\"m.third\""), std::string::npos) << v[2];
  EXPECT_NE(v[2].find("\"count\":1"), std::string::npos);
}

TEST(PrometheusText, HasHelpTypeAndSampleLines) {
  MetricRegistry registry;
  registry.counter("halfback_demo_total", "a demo counter")->add(7);
  registry.histogram("halfback_demo_ns", "a demo histogram")->record(9);
  const std::string out = prometheus_text(registry);
  EXPECT_NE(out.find("# HELP halfback_demo_total a demo counter"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE halfback_demo_total counter"), std::string::npos);
  EXPECT_NE(out.find("halfback_demo_total 7\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE halfback_demo_ns histogram"), std::string::npos);
  EXPECT_NE(out.find("halfback_demo_ns_count 1\n"), std::string::npos);
  EXPECT_NE(out.find("halfback_demo_ns_sum 9\n"), std::string::npos);
}

TEST(ChromeTrace, EmitsMetadataSpansAndInstants) {
  FlightRecorder recorder;
  Tape& tape = recorder.tape(TrackKind::flow, 1, "flow 1 demo");
  tape.enter_phase(sim::Time::microseconds(0), FlowPhase::handshake);
  tape.enter_phase(sim::Time::microseconds(100), FlowPhase::pacing);
  tape.record(sim::Time::microseconds(150), TapeEventKind::segment_sent, 5);

  const std::string out =
      chrome_trace_json(recorder, sim::Time::microseconds(400));
  EXPECT_EQ(out.front(), '{');
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);  // thread metadata
  EXPECT_NE(out.find("flow 1 demo"), std::string::npos);
  // handshake span: [0, 100) us; pacing closed by the end time at 400 us.
  EXPECT_NE(out.find("\"name\":\"handshake\",\"ts\":0.000,\"dur\":100.000"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"name\":\"pacing\",\"ts\":100.000,\"dur\":300.000"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);  // instant event
  EXPECT_NE(out.find("segment_sent"), std::string::npos);
}

TEST(ChromeTrace, TraceFromEmulabRunHasPacingSpans) {
  // Acceptance shape for the CI smoke check: a real halfback run must
  // produce per-flow phase spans, including the paced-start phase.
  const ExportedRun run = run_and_export();
  EXPECT_NE(run.trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"name\":\"pacing\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"name\":\"handshake\""), std::string::npos);
}

TEST(ChromeTrace, HubOverloadNestsSpanEventsAndKeepsTapePrefix) {
  const ExportedRun run = run_and_export();
  // The recorder-only overload's output is a byte-exact prefix of the
  // full-hub overload (minus the closing bracket): adding the span layer
  // must never disturb the tape events.
  const std::string closing = "\n]}\n";
  ASSERT_GE(run.trace.size(), closing.size());
  const std::string tape_prefix =
      run.trace.substr(0, run.trace.size() - closing.size());
  EXPECT_EQ(run.hub_trace.compare(0, tape_prefix.size(), tape_prefix), 0);
  // The span layer: pid-3 process metadata plus nested B/E duration pairs.
  EXPECT_NE(run.hub_trace.find("\"args\":{\"name\":\"spans\"}"),
            std::string::npos);
  EXPECT_NE(run.hub_trace.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(run.hub_trace.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(run.hub_trace.find("\"name\":\"blast\""), std::string::npos);
  // B and E counts must match (every span closes at export).
  std::size_t opens = 0;
  std::size_t closes = 0;
  for (std::size_t pos = 0;
       (pos = run.hub_trace.find("\"ph\":\"B\"", pos)) != std::string::npos;
       ++pos) {
    ++opens;
  }
  for (std::size_t pos = 0;
       (pos = run.hub_trace.find("\"ph\":\"E\"", pos)) != std::string::npos;
       ++pos) {
    ++closes;
  }
  EXPECT_EQ(opens, closes);
  EXPECT_GT(opens, 0u);
}

TEST(SpansJsonl, OneObjectPerSpanPlusFooter) {
  SpanRecorder spans;
  const std::uint32_t root =
      spans.open_span(9, SpanKind::flow, 0, sim::Time::milliseconds(1));
  const std::uint32_t hs = spans.open_span(9, SpanKind::handshake, root,
                                           sim::Time::milliseconds(1));
  spans.close_span(hs, sim::Time::milliseconds(2));

  const std::string out = spans_jsonl(spans, sim::Time::milliseconds(7));
  EXPECT_NE(
      out.find("{\"span\":1,\"parent\":0,\"flow\":9,\"kind\":\"flow\","
               "\"begin_ns\":1000000,\"end_ns\":7000000,\"open\":true,"
               "\"abandoned\":false}"),
      std::string::npos)
      << out;  // open span clamps its end to the export end
  EXPECT_NE(
      out.find("{\"span\":2,\"parent\":1,\"flow\":9,\"kind\":\"handshake\","
               "\"begin_ns\":1000000,\"end_ns\":2000000,\"open\":false,"
               "\"abandoned\":false}"),
      std::string::npos)
      << out;
  EXPECT_NE(out.find("{\"span_count\":2,\"dropped\":0}"), std::string::npos);
}

TEST(TimeseriesJsonl, EmitsTouchedWindowsOnlyInCreationOrder) {
  Hub hub;
  WindowSeries& link = hub.series("link.0");
  WindowSeries& cls = hub.series("class.halfback");
  link.tally_bytes(sim::Time::milliseconds(25), 3000);  // window 2 @10ms width
  cls.tally_dup(sim::Time::milliseconds(5));            // window 0

  const std::string out = timeseries_jsonl(hub);
  const std::size_t link_pos = out.find("\"series\":\"link.0\"");
  const std::size_t cls_pos = out.find("\"series\":\"class.halfback\"");
  ASSERT_NE(link_pos, std::string::npos) << out;
  ASSERT_NE(cls_pos, std::string::npos) << out;
  EXPECT_LT(link_pos, cls_pos);  // creation order == export order
  // Touched windows only: index 2 for the link, index 0 for the class.
  EXPECT_NE(out.find("\"windows\":[[2,3000,0,0,0,0,0,0]]"), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"windows\":[[0,0,0,0,0,1,0,0]]"), std::string::npos)
      << out;
}

TEST(ManifestJson, CarriesProvenanceFields) {
  RunManifest manifest;
  manifest.experiment = "emulab";
  manifest.scheme = "halfback";
  manifest.seed = 42;
  manifest.config_digest = 0xdeadbeefcafef00dULL;
  manifest.trace_hash = 0x0123456789abcdefULL;
  manifest.sim_end = sim::Time::seconds(2);
  manifest.events_dispatched = 1000;
  const std::string out = manifest_json(manifest, nullptr);
  EXPECT_NE(out.find("\"experiment\":\"emulab\""), std::string::npos);
  EXPECT_NE(out.find("\"scheme\":\"halfback\""), std::string::npos);
  EXPECT_NE(out.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(out.find("\"config_digest\":\"0xdeadbeefcafef00d\""),
            std::string::npos);
  EXPECT_NE(out.find("\"trace_hash\":\"0x0123456789abcdef\""),
            std::string::npos);
  EXPECT_NE(out.find("\"events_dispatched\":1000"), std::string::npos);
}

TEST(ManifestJson, Hex64IsZeroPaddedLowercase) {
  EXPECT_EQ(hex64(0), "0x0000000000000000");
  EXPECT_EQ(hex64(0xABCULL), "0x0000000000000abc");
  EXPECT_EQ(hex64(~0ULL), "0xffffffffffffffff");
}

TEST(ManifestJson, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Formatting, FormatDoubleIsLocaleFreeAndRoundTrips) {
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(42.0), "42");
  EXPECT_EQ(format_double(-3.0), "-3");
  const std::string frac = format_double(1.5);
  EXPECT_EQ(frac, "1.5");
  EXPECT_EQ(std::stod(format_double(0.1)), 0.1);
}

TEST(Formatting, JsonEscapeHandlesQuotesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string{"a\x01"
                                    "b"}),
            "a\\u0001b");
}

TEST(HistogramBins, BridgeScalesEdgesAndKeepsCounts) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  h->record(2'000'000);  // 2 ms in ns
  const std::vector<stats::HistogramBin> bins = histogram_bins(*h, 1e6);
  ASSERT_EQ(bins.size(), h->bucket_count());
  std::uint64_t total = 0;
  for (const auto& bin : bins) {
    EXPECT_LT(bin.lower, bin.upper);
    total += bin.count;
  }
  EXPECT_EQ(total, 1u);
  EXPECT_LE(bins.back().lower, 2.0);
  EXPECT_GT(bins.back().upper, 2.0);
}

}  // namespace
}  // namespace halfback::telemetry
