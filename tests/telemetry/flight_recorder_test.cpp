// FlightRecorder / Tape semantics: slab-backed rings, wrap-around keeping
// the newest events, and the bounded phase-transition list.
#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace halfback::telemetry {
namespace {

sim::Time us(std::int64_t n) { return sim::Time::microseconds(n); }

TEST(FlightRecorder, TapeCreatedOnFirstUseAndFound) {
  FlightRecorder recorder;
  EXPECT_EQ(recorder.find(TrackKind::flow, 7), nullptr);
  Tape& tape = recorder.tape(TrackKind::flow, 7, "flow 7");
  EXPECT_EQ(recorder.find(TrackKind::flow, 7), &tape);
  EXPECT_EQ(recorder.tape_count(), 1u);
  EXPECT_EQ(tape.label(), "flow 7");
  EXPECT_EQ(tape.track(), TrackKind::flow);
  EXPECT_EQ(tape.id(), 7u);
  // Same id under a different track is a different tape.
  Tape& link = recorder.tape(TrackKind::link, 7, "link 7");
  EXPECT_NE(&link, &tape);
  EXPECT_EQ(recorder.tape_count(), 2u);
}

TEST(FlightRecorder, LabelAppliesOnlyAtCreation) {
  FlightRecorder recorder;
  recorder.tape(TrackKind::flow, 1, "original");
  Tape& again = recorder.tape(TrackKind::flow, 1, "ignored");
  EXPECT_EQ(again.label(), "original");
}

TEST(FlightRecorder, EventsReadBackOldestFirst) {
  FlightRecorder recorder;
  Tape& tape = recorder.tape(TrackKind::flow, 1);
  tape.record(us(10), TapeEventKind::flow_start);
  tape.record(us(20), TapeEventKind::segment_sent, 1);
  tape.record(us(30), TapeEventKind::segment_sent, 2);
  ASSERT_EQ(tape.size(), 3u);
  EXPECT_EQ(tape.dropped(), 0u);
  EXPECT_EQ(tape.event(0).kind, TapeEventKind::flow_start);
  EXPECT_EQ(tape.event(1).a, 1u);
  EXPECT_EQ(tape.event(2).a, 2u);
  EXPECT_EQ(tape.event(2).at, us(30));
}

TEST(FlightRecorder, RingWrapKeepsNewestAndCountsDropped) {
  FlightRecorder recorder{FlightRecorder::Config{.events_per_tape = 4}};
  Tape& tape = recorder.tape(TrackKind::flow, 1);
  for (std::uint32_t i = 0; i < 10; ++i) {
    tape.record(us(i), TapeEventKind::segment_sent, i);
  }
  EXPECT_EQ(tape.size(), 4u);
  EXPECT_EQ(tape.dropped(), 6u);
  // Survivors are the newest four, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tape.event(i).a, 6u + i);
  }
}

TEST(FlightRecorder, ConsecutiveDuplicatePhasesCollapse) {
  FlightRecorder recorder;
  Tape& tape = recorder.tape(TrackKind::flow, 1);
  tape.enter_phase(us(0), FlowPhase::handshake);
  tape.enter_phase(us(5), FlowPhase::pacing);
  tape.enter_phase(us(9), FlowPhase::pacing);  // duplicate: collapsed
  ASSERT_EQ(tape.phases().size(), 2u);
  EXPECT_EQ(tape.phases()[0].phase, FlowPhase::handshake);
  EXPECT_EQ(tape.phases()[1].phase, FlowPhase::pacing);
  EXPECT_EQ(tape.phases()[1].start, us(5));
}

TEST(FlightRecorder, ZeroWidthPhaseIsReplacedNotKept) {
  FlightRecorder recorder;
  Tape& tape = recorder.tape(TrackKind::flow, 1);
  tape.enter_phase(us(0), FlowPhase::handshake);
  // Generic "transfer" refined to "pacing" at the same instant: the
  // zero-width transfer span must not survive.
  tape.enter_phase(us(5), FlowPhase::transfer);
  tape.enter_phase(us(5), FlowPhase::pacing);
  ASSERT_EQ(tape.phases().size(), 2u);
  EXPECT_EQ(tape.phases()[1].phase, FlowPhase::pacing);
  EXPECT_EQ(tape.phases()[1].start, us(5));
}

TEST(FlightRecorder, PhaseListIsCappedButRingStillRecords) {
  FlightRecorder recorder;
  Tape& tape = recorder.tape(TrackKind::flow, 1);
  // Alternate phases far past the cap.
  for (int i = 0; i < 40; ++i) {
    tape.enter_phase(us(i), i % 2 == 0 ? FlowPhase::pacing : FlowPhase::ropr);
  }
  EXPECT_EQ(tape.phases().size(), 16u);  // kMaxPhaseSpans
  // Once the span list is full the last stored phase stops advancing, so
  // every second alternation now collapses as a duplicate: 16 recorded
  // before the cap, then half of the remaining 24.
  EXPECT_EQ(tape.size(), 28u);
}

TEST(FlightRecorder, PhaseEnterMirrorsIntoTheRing) {
  FlightRecorder recorder;
  Tape& tape = recorder.tape(TrackKind::flow, 1);
  tape.enter_phase(us(3), FlowPhase::ropr);
  ASSERT_EQ(tape.size(), 1u);
  EXPECT_EQ(tape.event(0).kind, TapeEventKind::phase_enter);
  EXPECT_EQ(tape.event(0).a, static_cast<std::uint32_t>(FlowPhase::ropr));
}

TEST(FlightRecorder, ManyTapesSpanSlabsWithStableContents) {
  // 3 tapes per slab forces several slab allocations; every ring must stay
  // distinct and addressable afterwards.
  FlightRecorder recorder{
      FlightRecorder::Config{.events_per_tape = 8, .tapes_per_slab = 3}};
  constexpr std::uint64_t kTapes = 20;
  for (std::uint64_t id = 0; id < kTapes; ++id) {
    Tape& tape = recorder.tape(TrackKind::flow, id);
    tape.record(us(static_cast<std::int64_t>(id)), TapeEventKind::flow_start,
                static_cast<std::uint32_t>(id));
  }
  ASSERT_EQ(recorder.tape_count(), kTapes);
  for (std::uint64_t id = 0; id < kTapes; ++id) {
    const Tape* tape = recorder.find(TrackKind::flow, id);
    ASSERT_NE(tape, nullptr);
    ASSERT_EQ(tape->size(), 1u);
    EXPECT_EQ(tape->event(0).a, id);
    // Creation order is export order.
    EXPECT_EQ(&recorder.tape_at(id), tape);
  }
}

TEST(FlightRecorder, ZeroConfigValuesAreClampedToOne) {
  FlightRecorder recorder{
      FlightRecorder::Config{.events_per_tape = 0, .tapes_per_slab = 0}};
  EXPECT_EQ(recorder.config().events_per_tape, 1u);
  EXPECT_EQ(recorder.config().tapes_per_slab, 1u);
  Tape& tape = recorder.tape(TrackKind::flow, 1);
  tape.record(us(1), TapeEventKind::flow_start);
  tape.record(us(2), TapeEventKind::complete);
  EXPECT_EQ(tape.size(), 1u);
  EXPECT_EQ(tape.event(0).kind, TapeEventKind::complete);
}

TEST(FlightRecorder, EnumNamesAreStable) {
  // Exporters serialize these strings; renaming breaks trace consumers.
  EXPECT_STREQ(to_string(FlowPhase::handshake), "handshake");
  EXPECT_STREQ(to_string(FlowPhase::pacing), "pacing");
  EXPECT_STREQ(to_string(FlowPhase::ropr), "ropr");
  EXPECT_STREQ(to_string(TapeEventKind::proactive_sent), "proactive_sent");
  EXPECT_STREQ(to_string(TapeEventKind::karn_discard), "karn_discard");
}

}  // namespace
}  // namespace halfback::telemetry
