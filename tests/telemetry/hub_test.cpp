// Hub acceptance contract: installing telemetry is purely observational.
// The golden same-seed trace hashes from tests/audit/refactor_stability_test.cpp
// must stay bit-identical with a Hub recording, faults on or off — and the
// hub must actually have recorded something, so the invariance is not
// vacuous.
#include "telemetry/hub.h"

#include <gtest/gtest.h>

#include "exp/emulab.h"
#include "exp/planetlab.h"
#include "telemetry/export.h"
#include "telemetry/manifest.h"

namespace halfback::telemetry {
namespace {

using exp::EmulabRunner;
using exp::PlanetLabConfig;
using exp::PlanetLabEnv;
using exp::TrialResult;
using exp::WorkloadPart;

// Golden hashes anchored in tests/audit/refactor_stability_test.cpp; if a
// deliberate simulator change re-baselines them there, update here too.
constexpr std::uint64_t kGoldenEmulabHalfback = 0xf36e16201b236f8aULL;
constexpr std::uint64_t kGoldenPlanetLabHalfback = 0xc1ea3c0a33978304ULL;

EmulabRunner::Config golden_emulab_config() {
  EmulabRunner::Config config;
  config.seed = 5;
  config.dumbbell.sender_count = 4;
  config.dumbbell.receiver_count = 4;
  config.drain = sim::Time::seconds(20);
  return config;
}

std::vector<WorkloadPart> golden_emulab_parts() {
  std::vector<WorkloadPart> parts(1);
  parts[0].scheme = schemes::Scheme::halfback;
  for (int i = 0; i < 6; ++i) {
    parts[0].schedule.push_back(workload::FlowArrival{
        sim::Time::milliseconds(50.0 * i), /*bytes=*/100'000});
  }
  return parts;
}

TEST(HubInvariance, EmulabGoldenHashUnchangedWithHubInstalled) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  Hub hub;
  EmulabRunner::Config config = golden_emulab_config();
  config.telemetry = &hub;
  const exp::RunResult run = EmulabRunner{config}.run(golden_emulab_parts());
  EXPECT_EQ(run.audit_violations, 0u);
  EXPECT_EQ(run.trace_hash, kGoldenEmulabHalfback);
  // Not vacuous: the hub observed the run.
  EXPECT_GT(hub.sim().events_dispatched->value(), 0u);
  EXPECT_EQ(hub.transport().flows_started->value(), 6u);
  EXPECT_EQ(hub.transport().flows_completed->value(), 6u);
  EXPECT_GT(hub.transport().rtt->count(), 0u);
  EXPECT_GT(hub.recorder().tape_count(), 0u);
}

TEST(HubInvariance, PlanetLabGoldenHashUnchangedWithHubInstalled) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  PlanetLabConfig config;
  config.pair_count = 4;
  config.seed = 7;
  config.per_trial_timeout = sim::Time::seconds(60);
  const PlanetLabEnv env{config};
  const exp::PathSample& path = env.paths().front();

  Hub hub;
  const TrialResult with_hub =
      env.run_one(schemes::Scheme::halfback, path, 1234, &hub);
  EXPECT_EQ(with_hub.audit_violations, 0u);
  EXPECT_EQ(with_hub.trace_hash, kGoldenPlanetLabHalfback);
  EXPECT_GT(hub.sim().events_dispatched->value(), 0u);
  EXPECT_EQ(hub.transport().flows_completed->value(), 1u);
}

TEST(HubInvariance, FaultyRunHashUnchangedWithHubInstalled) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  // No golden constant for this config; compare a bare run against an
  // instrumented one directly.
  EmulabRunner::Config config = golden_emulab_config();
  config.faults.gilbert_elliott.p_good_to_bad = 0.02;
  config.faults.corrupt.probability = 0.02;
  const exp::RunResult bare = EmulabRunner{config}.run(golden_emulab_parts());

  Hub hub;
  config.telemetry = &hub;
  const exp::RunResult taped = EmulabRunner{config}.run(golden_emulab_parts());
  EXPECT_EQ(bare.trace_hash, taped.trace_hash);
  EXPECT_EQ(bare.audit_violations, 0u);
  EXPECT_EQ(taped.audit_violations, 0u);
  // record_injector() folded the per-cause totals into the fault counters.
  EXPECT_EQ(hub.fault().packets_seen->value(), taped.faults.packets_seen);
  EXPECT_EQ(hub.fault().drops->value(), taped.faults.total_drops());
  EXPECT_GT(hub.fault().packets_seen->value(), 0u);
}

TEST(Hub, SnapshotRegistersPerLinkGauges) {
  Hub hub;
  EmulabRunner::Config config = golden_emulab_config();
  config.telemetry = &hub;
  EmulabRunner{config}.run(golden_emulab_parts());
  // The 4x4 dumbbell has per-host access links plus the bottleneck pair;
  // link 0's gauges must exist and utilization must be a sane fraction.
  const auto* util = hub.registry().find("net.link.0.utilization");
  ASSERT_NE(util, nullptr);
  const double u = hub.registry().gauge_at(*util).value();
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 1.0);
  EXPECT_NE(hub.registry().find("net.link.0.queue_drops"), nullptr);
  EXPECT_NE(hub.registry().find("net.link.0.queue_max_backlog_bytes"), nullptr);
  // And the end-of-run clock gauge was stamped.
  EXPECT_GT(hub.sim().sim_end_ns->value(), 0.0);
}

TEST(Manifest, DigestIsStableAcrossRunsAndSensitiveToSeed) {
  const auto run_manifest = [](std::uint64_t seed) {
    Hub hub;
    EmulabRunner::Config config = golden_emulab_config();
    config.seed = seed;
    config.telemetry = &hub;
    EmulabRunner runner{config};
    const exp::RunResult run = runner.run(golden_emulab_parts());
    RunManifest m = runner.manifest(run, "emulab");
    m.scheme = "halfback";
    return m;
  };
  const RunManifest a = run_manifest(5);
  const RunManifest b = run_manifest(5);
  const RunManifest c = run_manifest(6);
  EXPECT_EQ(a.config_digest, b.config_digest);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_NE(a.config_digest, c.config_digest);
  EXPECT_EQ(a.seed, 5u);
  EXPECT_EQ(a.experiment, "emulab");
  // Wall time is the bench layer's job; src/ must leave it zero.
  EXPECT_EQ(a.wall_time_seconds, 0.0);
}

TEST(Manifest, PlanetLabManifestUsesTrialSeedAndEventCount) {
  PlanetLabConfig config;
  config.pair_count = 4;
  config.seed = 7;
  config.per_trial_timeout = sim::Time::seconds(60);
  const PlanetLabEnv env{config};
  Hub hub;
  const TrialResult trial =
      env.run_one(schemes::Scheme::halfback, env.paths().front(), 1234, &hub);
  const RunManifest m =
      env.manifest(trial, schemes::Scheme::halfback, 1234, &hub);
  EXPECT_EQ(m.experiment, "planetlab");
  EXPECT_EQ(m.scheme, "halfback");
  EXPECT_EQ(m.seed, 1234u);
  EXPECT_EQ(m.events_dispatched, hub.sim().events_dispatched->value());
  EXPECT_GT(m.events_dispatched, 0u);
  EXPECT_EQ(m.sim_end, trial.record.completion_time);
}

TEST(Hub, FlowTapesCarryPhaseSpansForHalfback) {
  Hub hub;
  EmulabRunner::Config config = golden_emulab_config();
  config.telemetry = &hub;
  EmulabRunner{config}.run(golden_emulab_parts());
  // Every halfback flow should show at least handshake -> pacing.
  std::size_t flow_tapes = 0;
  bool saw_pacing = false;
  for (std::size_t i = 0; i < hub.recorder().tape_count(); ++i) {
    const Tape& tape = hub.recorder().tape_at(i);
    if (tape.track() != TrackKind::flow) continue;
    ++flow_tapes;
    EXPECT_GE(tape.phases().size(), 2u) << tape.label();
    for (const PhaseSpan& span : tape.phases()) {
      if (span.phase == FlowPhase::pacing) saw_pacing = true;
    }
  }
  EXPECT_EQ(flow_tapes, 6u);
  EXPECT_TRUE(saw_pacing);
}

TEST(HubSpans, HalfbackRunRecordsFlowSpanTrees) {
  Hub hub;
  EmulabRunner::Config config = golden_emulab_config();
  config.telemetry = &hub;
  EmulabRunner{config}.run(golden_emulab_parts());

  const SpanRecorder& spans = hub.spans();
  ASSERT_GT(spans.size(), 0u);
  EXPECT_EQ(spans.dropped(), 0u);
  // Each of the 6 flows gets a root flow span plus at least handshake,
  // pacing, and blast children, all parented on the root and closed.
  std::size_t roots = 0;
  std::size_t handshakes = 0;
  std::size_t pacing = 0;
  std::size_t blast = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans.at(i);
    EXPECT_FALSE(s.open) << "span " << s.id << " left open";
    EXPECT_LE(s.begin, s.end);
    if (s.kind == SpanKind::flow) {
      EXPECT_EQ(s.parent, 0u);
      ++roots;
      continue;
    }
    // Child spans point at their flow's root span.
    ASSERT_NE(s.parent, 0u);
    EXPECT_EQ(spans.at(s.parent - 1).kind, SpanKind::flow);
    EXPECT_EQ(spans.at(s.parent - 1).flow, s.flow);
    if (s.kind == SpanKind::handshake) ++handshakes;
    if (s.kind == SpanKind::pacing) ++pacing;
    if (s.kind == SpanKind::blast) ++blast;
  }
  EXPECT_EQ(roots, 6u);
  EXPECT_EQ(handshakes, 6u);
  EXPECT_EQ(pacing, 6u);
  // Halfback re-enters the blast phase after recovery episodes, so each
  // flow contributes at least one blast span (possibly more).
  EXPECT_GE(blast, 6u);
}

TEST(HubSeries, HalfbackRunRecordsLinkAndClassSeries) {
  Hub hub;
  EmulabRunner::Config config = golden_emulab_config();
  config.telemetry = &hub;
  EmulabRunner{config}.run(golden_emulab_parts());

  ASSERT_GT(hub.series_count(), 0u);
  std::uint64_t link_bytes = 0;
  std::uint64_t class_bytes = 0;
  std::uint64_t class_inflight_peak = 0;
  for (std::size_t i = 0; i < hub.series_count(); ++i) {
    const WindowSeries& s = hub.series_at(i);
    const bool is_link = s.name().rfind("link.", 0) == 0;
    const bool is_class = s.name().rfind("class.", 0) == 0;
    EXPECT_TRUE(is_link || is_class) << s.name();
    for (std::size_t w = 0; w < s.window_count(); ++w) {
      if (is_link) link_bytes += s.window(w).bytes;
      if (is_class) {
        class_bytes += s.window(w).bytes;
        if (s.window(w).inflight_peak > class_inflight_peak) {
          class_inflight_peak = s.window(w).inflight_peak;
        }
      }
    }
  }
  // Links saw every delivered packet; the halfback class series saw the
  // goodput (6 flows x 100 kB) and a nonzero in-flight high-water mark.
  EXPECT_GT(link_bytes, 6u * 100'000u);
  EXPECT_GE(class_bytes, 6u * 100'000u);
  EXPECT_GT(class_inflight_peak, 0u);
}

TEST(HubMerge, ShardSpansAndSeriesMergeDeterministically) {
  // The sharded reduce for the new layers: spans append in shard order
  // with ids re-based; series fold by name. Two parents merging the same
  // shards in the same order must export byte-identical artifacts.
  auto record_shard = [](Hub& shard, std::uint64_t flow, std::int64_t ms) {
    const std::uint32_t root = shard.spans().open_span(
        flow, SpanKind::flow, 0, sim::Time::milliseconds(ms));
    const std::uint32_t hs = shard.spans().open_span(
        flow, SpanKind::handshake, root, sim::Time::milliseconds(ms));
    shard.spans().close_span(hs, sim::Time::milliseconds(ms + 1));
    shard.spans().close_span(root, sim::Time::milliseconds(ms + 5));
    shard.series("link.0").tally_bytes(sim::Time::milliseconds(ms), 1000);
    shard.series("class.halfback")
        .tally_packets(sim::Time::milliseconds(ms), 2);
  };
  Hub shard_a, shard_b;
  record_shard(shard_a, 1, 10);
  record_shard(shard_b, 2, 20);

  Hub parent_x, parent_y;
  parent_x.merge_from(shard_a);
  parent_x.merge_from(shard_b);
  parent_y.merge_from(shard_a);
  parent_y.merge_from(shard_b);

  const sim::Time end = sim::Time::milliseconds(100);
  EXPECT_EQ(spans_jsonl(parent_x.spans(), end),
            spans_jsonl(parent_y.spans(), end));
  EXPECT_EQ(timeseries_jsonl(parent_x), timeseries_jsonl(parent_y));
  // Re-based ids: shard_b's root follows shard_a's two spans.
  ASSERT_EQ(parent_x.spans().size(), 4u);
  EXPECT_EQ(parent_x.spans().at(2).id, 3u);
  EXPECT_EQ(parent_x.spans().at(3).parent, 3u);
  // Series folded by name, not duplicated.
  EXPECT_EQ(parent_x.series_count(), 2u);
  EXPECT_EQ(parent_x.series("link.0").window(1).bytes, 1000u);
  EXPECT_EQ(parent_x.series("link.0").window(2).bytes, 1000u);
}

TEST(HubMerge, FoldsShardRegistriesIntoTheParent) {
  // The sharded-engine reduce: each worker records into its own Hub; the
  // parent folds them after join. Tapes stay per-shard by design — only
  // the metric registry merges.
  Hub parent, shard;
  parent.registry().counter("flows_completed", "x")->add(3);
  shard.registry().counter("flows_completed", "x")->add(4);
  shard.registry().gauge("max_queue_depth", "x")->set(9.0);
  parent.merge_from(shard);
  EXPECT_EQ(parent.registry().counter("flows_completed", "")->value(), 7u);
  EXPECT_EQ(parent.registry().gauge("max_queue_depth", "")->value(), 9.0);
  // The shard is read, not drained.
  EXPECT_EQ(shard.registry().counter("flows_completed", "")->value(), 4u);
}

}  // namespace
}  // namespace halfback::telemetry
