// MetricRegistry and instrument semantics: registration order, dedup,
// kind safety, and the log-linear histogram's pure-integer bucketing.
#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace halfback::telemetry {
namespace {

TEST(Counter, AddsAndIncrements) {
  MetricRegistry registry;
  Counter* c = registry.counter("c", "test");
  c->increment();
  c->add(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(Gauge, SetAndHighWater) {
  MetricRegistry registry;
  Gauge* g = registry.gauge("g", "test");
  g->set(5.0);
  g->set_max(3.0);
  EXPECT_EQ(g->value(), 5.0);
  g->set_max(9.0);
  EXPECT_EQ(g->value(), 9.0);
  g->set(1.0);  // plain set still overwrites downward
  EXPECT_EQ(g->value(), 1.0);
}

TEST(Registry, RegistrationOrderIsEntryOrder) {
  MetricRegistry registry;
  registry.counter("zulu", "late alphabetically, first registered");
  registry.gauge("alpha", "early alphabetically, second registered");
  registry.histogram("mike", "third");
  ASSERT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.entries()[0].name, "zulu");
  EXPECT_EQ(registry.entries()[1].name, "alpha");
  EXPECT_EQ(registry.entries()[2].name, "mike");
}

TEST(Registry, ReRegisteringReturnsTheSameInstrument) {
  MetricRegistry registry;
  Counter* first = registry.counter("shared", "one");
  Counter* second = registry.counter("shared", "ignored on re-register");
  EXPECT_EQ(first, second);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  MetricRegistry registry;
  registry.counter("name", "a counter");
  EXPECT_THROW(registry.gauge("name", "now a gauge?"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("name", "or a histogram?"),
               std::invalid_argument);
}

TEST(Registry, FindReturnsNullForUnknown) {
  MetricRegistry registry;
  registry.counter("known", "x");
  EXPECT_NE(registry.find("known"), nullptr);
  EXPECT_EQ(registry.find("unknown"), nullptr);
}

TEST(Registry, PointersStayStableAcrossGrowth) {
  MetricRegistry registry;
  Counter* first = registry.counter("first", "x");
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    registry.counter(name, "filler");
  }
  first->increment();
  const auto* e = registry.find("first");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(registry.counter_at(*e).value(), 1u);
  EXPECT_EQ(registry.counter("first", ""), first);
}

TEST(Histogram, UnitRegionBucketsAreExact) {
  // With k sub-bucket bits, values below 2^k each get their own bucket.
  const unsigned k = Histogram::kDefaultSubBucketBits;
  for (std::uint64_t v = 0; v < (1u << k); ++v) {
    EXPECT_EQ(Histogram::bucket_index(v, k), v);
    EXPECT_EQ(Histogram::bucket_lower(v, k), v);
    EXPECT_EQ(Histogram::bucket_upper(v, k), v + 1);
  }
}

TEST(Histogram, EveryValueLandsInsideItsBucket) {
  const unsigned k = Histogram::kDefaultSubBucketBits;
  // Probe values around every power of two up to 2^40, plus neighbours.
  for (unsigned p = 0; p <= 40; ++p) {
    for (std::int64_t delta : {-1, 0, 1, 3}) {
      const std::int64_t raw = (std::int64_t{1} << p) + delta;
      if (raw < 0) continue;
      const auto v = static_cast<std::uint64_t>(raw);
      const std::size_t i = Histogram::bucket_index(v, k);
      EXPECT_LE(Histogram::bucket_lower(i, k), v) << "v=" << v;
      EXPECT_LT(v, Histogram::bucket_upper(i, k)) << "v=" << v;
    }
  }
}

TEST(Histogram, BucketEdgesAreContiguousAndMonotone) {
  const unsigned k = Histogram::kDefaultSubBucketBits;
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(Histogram::bucket_upper(i, k), Histogram::bucket_lower(i + 1, k));
    EXPECT_LT(Histogram::bucket_lower(i, k), Histogram::bucket_upper(i, k));
  }
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  for (std::uint64_t v : {5u, 10u, 100u, 1000u}) h->record(v);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->sum(), 1115u);
  EXPECT_EQ(h->min(), 5u);
  EXPECT_EQ(h->max(), 1000u);
  EXPECT_DOUBLE_EQ(h->mean(), 1115.0 / 4.0);
}

TEST(Histogram, EmptyHistogramHasZeroStats) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 0u);
  EXPECT_EQ(h->mean(), 0.0);
  EXPECT_EQ(h->quantile_upper_bound(0.5), 0u);
}

TEST(Histogram, RecordTimeClampsNegativeDurations) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  h->record_time(sim::Time::nanoseconds(-5));
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->max(), 0u);
}

TEST(Histogram, QuantileUpperBoundCoversTheValue) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  for (std::uint64_t v = 1; v <= 1000; ++v) h->record(v);
  // The p-quantile estimate is a bucket upper edge at or above the exact
  // p-quantile, and within one bucket's relative resolution of it.
  const std::uint64_t p50 = h->quantile_upper_bound(0.5);
  const std::uint64_t p99 = h->quantile_upper_bound(0.99);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 640u);  // <= next bucket upper at 2^-3 resolution
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1152u);
  EXPECT_LE(p50, p99);
}

TEST(Histogram, ValueAtQuantileGoldenInUnitRegion) {
  // Values below the sub-bucket threshold land in width-1 buckets, so the
  // interpolated estimate is fully determined: pin it.
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  for (std::uint64_t v = 1; v <= 10; ++v) h->record(v);
  EXPECT_EQ(h->value_at_quantile(0.5), 6u);
  EXPECT_EQ(h->value_at_quantile(0.9), 10u);
  EXPECT_EQ(h->value_at_quantile(0.99), 10u);
  EXPECT_EQ(h->value_at_quantile(0.0), 1u);   // q<=0 -> min
  EXPECT_EQ(h->value_at_quantile(1.0), 10u);  // q>=1 -> max
}

TEST(Histogram, ValueAtQuantileSingleValueAndEmpty) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  EXPECT_EQ(h->value_at_quantile(0.5), 0u);  // empty -> 0
  h->record(7);
  h->record(7);
  h->record(7);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h->value_at_quantile(q), 7u) << "q=" << q;
  }
}

TEST(Histogram, ValueAtQuantileStaysInsideTheConservativeBound) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  for (std::uint64_t v = 1; v <= 1000; ++v) h->record(v);
  std::uint64_t prev = 0;
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::uint64_t v = h->value_at_quantile(q);
    EXPECT_LE(v, h->quantile_upper_bound(q)) << "q=" << q;
    EXPECT_GE(v, prev) << "q=" << q;  // monotone in q
    EXPECT_GE(v, h->min());
    EXPECT_LE(v, h->max());
    prev = v;
  }
  // The interpolated p50 of 1..1000 must be near 500, tighter than the
  // bucket-upper bound which may overshoot by a full bucket.
  EXPECT_GE(h->value_at_quantile(0.5), 480u);
  EXPECT_LE(h->value_at_quantile(0.5), 520u);
}

TEST(Histogram, LazyStorageGrowsToHighestBucketOnly) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  h->record(3);
  EXPECT_EQ(h->bucket_count(), 4u);  // unit region, bucket 3
  h->record(1'000'000);
  EXPECT_EQ(h->bucket_count(),
            Histogram::bucket_index(1'000'000, h->sub_bucket_bits()) + 1);
}

// ---- merge_from: the sharded-engine reduce ---------------------------------

TEST(Merge, CountersAddAndGaugesKeepTheMaximum) {
  MetricRegistry into, from;
  into.counter("packets", "x")->add(10);
  from.counter("packets", "x")->add(32);
  into.gauge("depth", "x")->set(7.0);
  from.gauge("depth", "x")->set(3.0);
  into.merge_from(from);
  EXPECT_EQ(into.counter("packets", "")->value(), 42u);
  EXPECT_EQ(into.gauge("depth", "")->value(), 7.0);
  // A second shard with a higher high-water mark wins.
  MetricRegistry shard2;
  shard2.gauge("depth", "x")->set(11.0);
  into.merge_from(shard2);
  EXPECT_EQ(into.gauge("depth", "")->value(), 11.0);
}

TEST(Merge, HistogramsFoldExactlyBucketwise) {
  MetricRegistry into, from;
  Histogram* a = into.histogram("rtt", "x");
  Histogram* b = from.histogram("rtt", "x");
  // Populations that, merged, are indistinguishable from one histogram
  // having recorded every value — merge is exact, not approximate.
  MetricRegistry both;
  Histogram* ref = both.histogram("rtt", "x");
  for (std::uint64_t v = 1; v <= 500; ++v) {
    a->record(v);
    ref->record(v);
  }
  for (std::uint64_t v = 400; v <= 100'000; v += 37) {
    b->record(v);
    ref->record(v);
  }
  into.merge_from(from);
  EXPECT_EQ(a->count(), ref->count());
  EXPECT_EQ(a->sum(), ref->sum());
  EXPECT_EQ(a->min(), ref->min());
  EXPECT_EQ(a->max(), ref->max());
  ASSERT_EQ(a->bucket_count(), ref->bucket_count());
  for (std::size_t i = 0; i < ref->bucket_count(); ++i) {
    EXPECT_EQ(a->bucket_value(i), ref->bucket_value(i)) << "bucket " << i;
  }
}

TEST(Merge, UnknownInstrumentsAreCreatedInSourceRegistrationOrder) {
  MetricRegistry into, from;
  into.counter("shared", "x")->add(1);
  from.gauge("zulu", "registered first in the shard")->set(2.0);
  from.counter("shared", "x")->add(2);
  from.counter("alpha", "registered last in the shard")->add(5);
  into.merge_from(from);
  ASSERT_EQ(into.size(), 3u);
  EXPECT_EQ(into.entries()[0].name, "shared");
  EXPECT_EQ(into.entries()[1].name, "zulu");
  EXPECT_EQ(into.entries()[2].name, "alpha");
  EXPECT_EQ(into.counter("shared", "")->value(), 3u);
  EXPECT_EQ(into.gauge("zulu", "")->value(), 2.0);
  EXPECT_EQ(into.counter("alpha", "")->value(), 5u);
}

TEST(Merge, KindAndResolutionMismatchesThrow) {
  MetricRegistry into, from;
  into.counter("name", "a counter here");
  from.gauge("name", "a gauge there");
  EXPECT_THROW(into.merge_from(from), std::invalid_argument);

  MetricRegistry coarse, fine;
  coarse.histogram("h", "x", Unit::none, /*sub_bucket_bits=*/2);
  fine.histogram("h", "x", Unit::none, /*sub_bucket_bits=*/4);
  EXPECT_THROW(coarse.merge_from(fine), std::invalid_argument);
}

TEST(Merge, SelfMergeIsANoOp) {
  MetricRegistry registry;
  registry.counter("c", "x")->add(21);
  registry.merge_from(registry);
  EXPECT_EQ(registry.counter("c", "")->value(), 21u);
}

}  // namespace
}  // namespace halfback::telemetry
