// MetricRegistry and instrument semantics: registration order, dedup,
// kind safety, and the log-linear histogram's pure-integer bucketing.
#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace halfback::telemetry {
namespace {

TEST(Counter, AddsAndIncrements) {
  MetricRegistry registry;
  Counter* c = registry.counter("c", "test");
  c->increment();
  c->add(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(Gauge, SetAndHighWater) {
  MetricRegistry registry;
  Gauge* g = registry.gauge("g", "test");
  g->set(5.0);
  g->set_max(3.0);
  EXPECT_EQ(g->value(), 5.0);
  g->set_max(9.0);
  EXPECT_EQ(g->value(), 9.0);
  g->set(1.0);  // plain set still overwrites downward
  EXPECT_EQ(g->value(), 1.0);
}

TEST(Registry, RegistrationOrderIsEntryOrder) {
  MetricRegistry registry;
  registry.counter("zulu", "late alphabetically, first registered");
  registry.gauge("alpha", "early alphabetically, second registered");
  registry.histogram("mike", "third");
  ASSERT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.entries()[0].name, "zulu");
  EXPECT_EQ(registry.entries()[1].name, "alpha");
  EXPECT_EQ(registry.entries()[2].name, "mike");
}

TEST(Registry, ReRegisteringReturnsTheSameInstrument) {
  MetricRegistry registry;
  Counter* first = registry.counter("shared", "one");
  Counter* second = registry.counter("shared", "ignored on re-register");
  EXPECT_EQ(first, second);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  MetricRegistry registry;
  registry.counter("name", "a counter");
  EXPECT_THROW(registry.gauge("name", "now a gauge?"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("name", "or a histogram?"),
               std::invalid_argument);
}

TEST(Registry, FindReturnsNullForUnknown) {
  MetricRegistry registry;
  registry.counter("known", "x");
  EXPECT_NE(registry.find("known"), nullptr);
  EXPECT_EQ(registry.find("unknown"), nullptr);
}

TEST(Registry, PointersStayStableAcrossGrowth) {
  MetricRegistry registry;
  Counter* first = registry.counter("first", "x");
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    registry.counter(name, "filler");
  }
  first->increment();
  const auto* e = registry.find("first");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(registry.counter_at(*e).value(), 1u);
  EXPECT_EQ(registry.counter("first", ""), first);
}

TEST(Histogram, UnitRegionBucketsAreExact) {
  // With k sub-bucket bits, values below 2^k each get their own bucket.
  const unsigned k = Histogram::kDefaultSubBucketBits;
  for (std::uint64_t v = 0; v < (1u << k); ++v) {
    EXPECT_EQ(Histogram::bucket_index(v, k), v);
    EXPECT_EQ(Histogram::bucket_lower(v, k), v);
    EXPECT_EQ(Histogram::bucket_upper(v, k), v + 1);
  }
}

TEST(Histogram, EveryValueLandsInsideItsBucket) {
  const unsigned k = Histogram::kDefaultSubBucketBits;
  // Probe values around every power of two up to 2^40, plus neighbours.
  for (unsigned p = 0; p <= 40; ++p) {
    for (std::int64_t delta : {-1, 0, 1, 3}) {
      const std::int64_t raw = (std::int64_t{1} << p) + delta;
      if (raw < 0) continue;
      const auto v = static_cast<std::uint64_t>(raw);
      const std::size_t i = Histogram::bucket_index(v, k);
      EXPECT_LE(Histogram::bucket_lower(i, k), v) << "v=" << v;
      EXPECT_LT(v, Histogram::bucket_upper(i, k)) << "v=" << v;
    }
  }
}

TEST(Histogram, BucketEdgesAreContiguousAndMonotone) {
  const unsigned k = Histogram::kDefaultSubBucketBits;
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(Histogram::bucket_upper(i, k), Histogram::bucket_lower(i + 1, k));
    EXPECT_LT(Histogram::bucket_lower(i, k), Histogram::bucket_upper(i, k));
  }
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  for (std::uint64_t v : {5u, 10u, 100u, 1000u}) h->record(v);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->sum(), 1115u);
  EXPECT_EQ(h->min(), 5u);
  EXPECT_EQ(h->max(), 1000u);
  EXPECT_DOUBLE_EQ(h->mean(), 1115.0 / 4.0);
}

TEST(Histogram, EmptyHistogramHasZeroStats) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 0u);
  EXPECT_EQ(h->mean(), 0.0);
  EXPECT_EQ(h->quantile_upper_bound(0.5), 0u);
}

TEST(Histogram, RecordTimeClampsNegativeDurations) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  h->record_time(sim::Time::nanoseconds(-5));
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->max(), 0u);
}

TEST(Histogram, QuantileUpperBoundCoversTheValue) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  for (std::uint64_t v = 1; v <= 1000; ++v) h->record(v);
  // The p-quantile estimate is a bucket upper edge at or above the exact
  // p-quantile, and within one bucket's relative resolution of it.
  const std::uint64_t p50 = h->quantile_upper_bound(0.5);
  const std::uint64_t p99 = h->quantile_upper_bound(0.99);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 640u);  // <= next bucket upper at 2^-3 resolution
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1152u);
  EXPECT_LE(p50, p99);
}

TEST(Histogram, LazyStorageGrowsToHighestBucketOnly) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h", "test");
  h->record(3);
  EXPECT_EQ(h->bucket_count(), 4u);  // unit region, bucket 3
  h->record(1'000'000);
  EXPECT_EQ(h->bucket_count(),
            Histogram::bucket_index(1'000'000, h->sub_bucket_bits()) + 1);
}

}  // namespace
}  // namespace halfback::telemetry
