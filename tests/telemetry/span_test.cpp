#include "telemetry/span.h"

#include <gtest/gtest.h>

namespace halfback::telemetry {
namespace {

using sim::Time;

TEST(SpanRecorder, OpenCloseAssignsSequentialIds) {
  SpanRecorder spans;
  const std::uint32_t root =
      spans.open_span(7, SpanKind::flow, 0, Time::milliseconds(1));
  const std::uint32_t child =
      spans.open_span(7, SpanKind::handshake, root, Time::milliseconds(1));
  EXPECT_EQ(root, 1u);
  EXPECT_EQ(child, 2u);
  spans.close_span(child, Time::milliseconds(2));
  spans.close_span(root, Time::milliseconds(3));
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans.at(0).kind, SpanKind::flow);
  EXPECT_EQ(spans.at(0).parent, 0u);
  EXPECT_FALSE(spans.at(0).open);
  EXPECT_EQ(spans.at(0).begin, Time::milliseconds(1));
  EXPECT_EQ(spans.at(0).end, Time::milliseconds(3));
  EXPECT_EQ(spans.at(1).parent, root);
  EXPECT_EQ(spans.at(1).end, Time::milliseconds(2));
}

TEST(SpanRecorder, CloseIsIdempotentAndIgnoresInvalidIds) {
  SpanRecorder spans;
  const std::uint32_t id =
      spans.open_span(1, SpanKind::blast, 0, Time::milliseconds(5));
  spans.close_span(id, Time::milliseconds(8));
  // A second close must not move the recorded end.
  spans.close_span(id, Time::milliseconds(9));
  EXPECT_EQ(spans.at(0).end, Time::milliseconds(8));
  // 0 and out-of-range ids are no-ops, so callers close unconditionally.
  spans.close_span(0, Time::milliseconds(9));
  spans.close_span(99, Time::milliseconds(9));
  EXPECT_EQ(spans.size(), 1u);
}

TEST(SpanRecorder, OpenSpanStaysOpenUntilClosed) {
  SpanRecorder spans;
  const std::uint32_t id =
      spans.open_span(3, SpanKind::rto_recovery, 0, Time::seconds(1));
  EXPECT_TRUE(spans.at(0).open);
  EXPECT_EQ(spans.at(0).end, Time::seconds(1));
  spans.abandon_span(id);
  EXPECT_TRUE(spans.at(0).abandoned);
  EXPECT_TRUE(spans.at(0).open);  // abandon flags, close ends
}

TEST(SpanRecorder, OverflowCountsDropsInsteadOfGrowing) {
  SpanRecorder spans{2};
  EXPECT_NE(spans.open_span(1, SpanKind::flow, 0, Time{}), 0u);
  EXPECT_NE(spans.open_span(1, SpanKind::handshake, 1, Time{}), 0u);
  EXPECT_EQ(spans.open_span(1, SpanKind::blast, 1, Time{}), 0u);
  EXPECT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans.dropped(), 1u);
}

TEST(SpanRecorder, MergeRebasesIdsAndParents) {
  SpanRecorder a;
  a.open_span(1, SpanKind::flow, 0, Time::milliseconds(1));

  SpanRecorder b;
  const std::uint32_t b_root =
      b.open_span(2, SpanKind::flow, 0, Time::milliseconds(2));
  b.open_span(2, SpanKind::handshake, b_root, Time::milliseconds(2));

  a.merge_from(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.at(1).id, 2u);
  EXPECT_EQ(a.at(1).parent, 0u);       // roots stay roots
  EXPECT_EQ(a.at(2).id, 3u);
  EXPECT_EQ(a.at(2).parent, 2u);       // child re-bases onto merged root
  EXPECT_EQ(a.at(2).flow, 2u);
}

TEST(SpanKindNames, AreStable) {
  EXPECT_STREQ(to_string(SpanKind::flow), "flow");
  EXPECT_STREQ(to_string(SpanKind::handshake), "handshake");
  EXPECT_STREQ(to_string(SpanKind::pacing), "pacing");
  EXPECT_STREQ(to_string(SpanKind::blast), "blast");
  EXPECT_STREQ(to_string(SpanKind::ropr_repair), "ropr_repair");
  EXPECT_STREQ(to_string(SpanKind::fallback), "fallback");
  EXPECT_STREQ(to_string(SpanKind::rto_recovery), "rto_recovery");
}

}  // namespace
}  // namespace halfback::telemetry
