#include "telemetry/timeseries.h"

#include <gtest/gtest.h>

namespace halfback::telemetry {
namespace {

using sim::Time;

TEST(WindowSeries, TalliesLandInTheirWindow) {
  WindowSeries series{"link.0", Time::milliseconds(10), 8};
  series.tally_bytes(Time::milliseconds(3), 1500);
  series.tally_packets(Time::milliseconds(3), 1);
  series.tally_bytes(Time::milliseconds(17), 3000);
  series.tally_drop(Time::milliseconds(17));
  ASSERT_EQ(series.window_count(), 2u);
  EXPECT_EQ(series.window(0).bytes, 1500u);
  EXPECT_EQ(series.window(0).packets, 1u);
  EXPECT_EQ(series.window(0).drops, 0u);
  EXPECT_EQ(series.window(1).bytes, 3000u);
  EXPECT_EQ(series.window(1).drops, 1u);
}

TEST(WindowSeries, PeaksAreHighWaterMarksNotSums) {
  WindowSeries series{"link.0", Time::milliseconds(10), 8};
  series.raise_queue_peak(Time::milliseconds(1), 4);
  series.raise_queue_peak(Time::milliseconds(2), 9);
  series.raise_queue_peak(Time::milliseconds(3), 6);
  series.raise_inflight_peak(Time::milliseconds(1), 30000);
  series.raise_inflight_peak(Time::milliseconds(2), 10000);
  EXPECT_EQ(series.window(0).queue_peak, 9u);
  EXPECT_EQ(series.window(0).inflight_peak, 30000u);
}

TEST(WindowSeries, ActivityPastTheLastWindowCountsAsDropped) {
  WindowSeries series{"link.0", Time::milliseconds(10), 2};
  series.tally_bytes(Time::milliseconds(5), 100);    // window 0
  series.tally_bytes(Time::milliseconds(25), 100);   // window 2: past capacity
  EXPECT_EQ(series.window_count(), 1u);
  EXPECT_EQ(series.dropped(), 1u);
}

TEST(WindowSeries, WindowCountTracksHighestTouchedIndex) {
  WindowSeries series{"flow", Time::milliseconds(10), 16};
  series.tally_retx(Time::milliseconds(55));  // window 5 only
  ASSERT_EQ(series.window_count(), 6u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_FALSE(series.window(i).touched());
  EXPECT_EQ(series.window(5).retx, 1u);
}

TEST(WindowSeries, MergeAddsTalliesAndMaxesPeaks) {
  WindowSeries a{"link.0", Time::milliseconds(10), 8};
  a.tally_bytes(Time::milliseconds(1), 100);
  a.raise_queue_peak(Time::milliseconds(1), 3);

  WindowSeries b{"link.0", Time::milliseconds(10), 8};
  b.tally_bytes(Time::milliseconds(1), 50);
  b.raise_queue_peak(Time::milliseconds(1), 7);
  b.tally_dup(Time::milliseconds(12));

  a.merge_from(b);
  ASSERT_EQ(a.window_count(), 2u);
  EXPECT_EQ(a.window(0).bytes, 150u);
  EXPECT_EQ(a.window(0).queue_peak, 7u);
  EXPECT_EQ(a.window(1).dups, 1u);
}

TEST(WindowSeries, MergeRejectsMismatchedWidths) {
  WindowSeries a{"link.0", Time::milliseconds(10), 4};
  WindowSeries b{"link.0", Time::milliseconds(20), 4};
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(WindowSeries, MergeOrderIsCommutativeOnContent) {
  // The shard-merge discipline relies on fold results not depending on
  // which shard recorded what — adds and maxes are order-free.
  WindowSeries left{"s", Time::milliseconds(10), 4};
  WindowSeries a{"s", Time::milliseconds(10), 4};
  WindowSeries b{"s", Time::milliseconds(10), 4};
  a.tally_packets(Time::milliseconds(2), 5);
  a.raise_inflight_peak(Time::milliseconds(2), 100);
  b.tally_packets(Time::milliseconds(2), 3);
  b.raise_inflight_peak(Time::milliseconds(2), 400);

  left.merge_from(a);
  left.merge_from(b);
  WindowSeries right{"s", Time::milliseconds(10), 4};
  right.merge_from(b);
  right.merge_from(a);
  ASSERT_EQ(left.window_count(), right.window_count());
  EXPECT_EQ(left.window(0).packets, right.window(0).packets);
  EXPECT_EQ(left.window(0).inflight_peak, right.window(0).inflight_peak);
}

}  // namespace
}  // namespace halfback::telemetry
