// Scoreboard and RTT-estimator behavior under adversarial ACK streams:
// duplicated and reordered (regressive) acknowledgements, seeded property
// sweeps via sim::Random, and the RFC 6298-style RTO ceiling. These are
// the sender-side pieces the netfault chaos matrix leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/packet.h"
#include "sim/random.h"
#include "transport/rtt_estimator.h"
#include "transport/scoreboard.h"

namespace halfback::transport {
namespace {

using sim::Time;
using namespace halfback::sim::literals;

Scoreboard make_sent_board(std::uint32_t total) {
  Scoreboard board{total};
  for (std::uint32_t i = 0; i < total; ++i) {
    board.on_sent(i, /*uid=*/i + 1, Time::milliseconds(i), /*proactive=*/false);
  }
  return board;
}

TEST(AckChaosTest, DuplicatedAckIsIdempotent) {
  Scoreboard board = make_sent_board(20);
  std::vector<net::SackBlock> sacks{{8, 10}};
  AckUpdate first = board.apply_ack(5, sacks);
  EXPECT_EQ(first.newly_cum_acked, 5u);
  EXPECT_EQ(first.newly_sacked.size(), 2u);
  // The identical ACK again (e.g. an injected duplicate): nothing new.
  AckUpdate second = board.apply_ack(5, sacks);
  EXPECT_FALSE(second.advanced());
  EXPECT_EQ(second.newly_acked_total(), 0u);
  EXPECT_EQ(board.cum_ack(), 5u);
}

TEST(AckChaosTest, ReorderedCumAckNeverRegresses) {
  Scoreboard board = make_sent_board(20);
  board.apply_ack(10, {});
  // An older ACK arrives late (reordering): the window must not move back.
  AckUpdate stale = board.apply_ack(4, {});
  EXPECT_EQ(board.cum_ack(), 10u);
  EXPECT_FALSE(stale.advanced());
  EXPECT_EQ(stale.newly_acked_total(), 0u);
  EXPECT_TRUE(board.is_acked(4));
}

TEST(AckChaosTest, SackedThenCumAckedCountsOnce) {
  Scoreboard board = make_sent_board(10);
  AckUpdate sacked = board.apply_ack(0, {{3, 4}});
  EXPECT_EQ(sacked.newly_sacked.size(), 1u);
  // Cumulative ACK later covers the SACKed segment: it must not be
  // reported newly-acked a second time.
  AckUpdate cum = board.apply_ack(5, {});
  EXPECT_EQ(cum.newly_cum_acked, 4u);  // 0,1,2,4 — 3 was already SACKed
  EXPECT_EQ(cum.newly_sacked.size(), 0u);
}

TEST(AckChaosTest, RandomAckStormPreservesInvariants) {
  // Property sweep: arbitrary (duplicated, reordered, overlapping) ACK
  // streams may never double-count a segment, regress the cumulative ACK,
  // or un-acknowledge anything.
  sim::Random rng{2026};
  for (int round = 0; round < 50; ++round) {
    const std::uint32_t total =
        static_cast<std::uint32_t>(rng.uniform_int(1, 60));
    Scoreboard board = make_sent_board(total);
    std::uint64_t newly_acked_sum = 0;
    std::uint32_t last_cum = 0;
    std::vector<bool> acked(total, false);
    for (int i = 0; i < 200; ++i) {
      const auto cum = static_cast<std::uint32_t>(rng.uniform_int(0, total));
      std::vector<net::SackBlock> sacks;
      if (cum < total && rng.bernoulli(0.7)) {
        const auto begin = static_cast<std::uint32_t>(
            rng.uniform_int(cum, total - 1));
        const auto end = static_cast<std::uint32_t>(
            rng.uniform_int(begin + 1, total));
        sacks.push_back({begin, end});
      }
      AckUpdate update = board.apply_ack(cum, sacks);
      newly_acked_sum += update.newly_acked_total();
      ASSERT_GE(board.cum_ack(), last_cum) << "cumulative ACK regressed";
      last_cum = board.cum_ack();
      for (std::uint32_t seq = 0; seq < total; ++seq) {
        if (acked[seq]) {
          ASSERT_TRUE(board.is_acked(seq)) << "segment un-acknowledged";
        } else if (board.is_acked(seq)) {
          acked[seq] = true;
        }
      }
      ASSERT_LE(board.pipe(), total);
    }
    ASSERT_LE(newly_acked_sum, total) << "segments double-counted as new";
  }
}

TEST(AckChaosTest, SegmentsRememberRttSampling) {
  // The per-segment Karn flag: the sender samples RTT at most once per
  // segment even if duplicated ACKs echo the same transmission's uid.
  Scoreboard board = make_sent_board(5);
  SegmentState* s = board.mutable_state(2);
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->rtt_sampled);
  s->rtt_sampled = true;
  EXPECT_TRUE(board.state(2)->rtt_sampled);
  EXPECT_FALSE(board.state(3)->rtt_sampled);
}

TEST(AckChaosTest, BackoffIsCappedAtMaxRto) {
  RttEstimator est;
  est.add_sample(200_ms);
  for (int i = 0; i < 40; ++i) est.backoff();  // way past any sane doubling
  EXPECT_EQ(est.rto(), 60_s);  // RFC 6298 ceiling, no overflow
  est.reset_backoff();
  EXPECT_LT(est.rto(), 2_s);
}

TEST(AckChaosTest, RandomSampleStreamKeepsRtoBounded) {
  RttEstimator::Config config;
  config.min_rto = 100_ms;
  RttEstimator est{config};
  sim::Random rng{7};
  for (int i = 0; i < 5000; ++i) {
    est.add_sample(Time::milliseconds(1) * (1.0 + 9999.0 * rng.uniform()));
    if (rng.bernoulli(0.05)) est.backoff();
    ASSERT_GE(est.rto(), config.min_rto);
    ASSERT_LE(est.rto(), config.max_rto);
  }
}

}  // namespace
}  // namespace halfback::transport
