#include "transport/agent.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/simulator.h"
#include "transport/tcp_sender.h"

namespace halfback::transport {
namespace {

using namespace halfback::sim::literals;

struct AgentFixture {
  sim::Simulator sim{1};
  net::Network net{sim};
  net::Dumbbell dumbbell;
  std::unique_ptr<TransportAgent> sender_agent;
  std::unique_ptr<TransportAgent> receiver_agent;

  AgentFixture() {
    net::DumbbellConfig config;
    config.sender_count = 1;
    config.receiver_count = 1;
    dumbbell = net::build_dumbbell(net, config);
    sender_agent = std::make_unique<TransportAgent>(sim, net, dumbbell.senders[0]);
    receiver_agent = std::make_unique<TransportAgent>(sim, net, dumbbell.receivers[0]);
  }

  SenderBase& start(net::FlowId flow, std::uint64_t bytes,
                    SenderBase::CompletionRef cb = {}) {
    auto sender = std::make_unique<TcpSender>(sim, net.node(dumbbell.senders[0]),
                                              dumbbell.receivers[0], flow, bytes,
                                              SenderConfig{}, "tcp");
    return sender_agent->start_flow(std::move(sender), cb);
  }
};

TEST(TransportAgentTest, DemultiplexesConcurrentFlows) {
  AgentFixture f;
  SenderBase& flow1 = f.start(1, 30'000);
  SenderBase& flow2 = f.start(2, 60'000);
  f.sim.run();
  EXPECT_TRUE(flow1.complete());
  EXPECT_TRUE(flow2.complete());
  ASSERT_NE(f.receiver_agent->receiver(1), nullptr);
  ASSERT_NE(f.receiver_agent->receiver(2), nullptr);
  EXPECT_EQ(f.receiver_agent->receiver(1)->stats().unique_segments,
            flow1.record().total_segments);
  EXPECT_EQ(f.receiver_agent->receiver(2)->stats().unique_segments,
            flow2.record().total_segments);
}

TEST(TransportAgentTest, SenderLookup) {
  AgentFixture f;
  SenderBase& flow = f.start(7, 10'000);
  EXPECT_EQ(f.sender_agent->sender(7), &flow);
  EXPECT_EQ(f.sender_agent->sender(8), nullptr);
}

TEST(TransportAgentTest, ReceiverCreatedOnSyn) {
  AgentFixture f;
  EXPECT_EQ(f.receiver_agent->receiver(1), nullptr);
  f.start(1, 10'000);
  f.sim.run_until(100_ms);  // SYN has crossed
  EXPECT_NE(f.receiver_agent->receiver(1), nullptr);
}

TEST(TransportAgentTest, CompletionCallbackAndRecordKeeping) {
  AgentFixture f;
  int callbacks = 0;
  // CompletionRef is non-owning: the callable must outlive the flow.
  auto on_done = [&](const FlowRecord& r) {
    ++callbacks;
    EXPECT_EQ(r.flow, 1u);
    EXPECT_TRUE(r.completed);
  };
  f.start(1, 10'000, SenderBase::CompletionRef{on_done});
  f.sim.run();
  EXPECT_EQ(callbacks, 1);
  ASSERT_EQ(f.sender_agent->completed().size(), 1u);
  EXPECT_EQ(f.sender_agent->completed()[0].flow, 1u);
}

TEST(TransportAgentTest, ActiveSenderCountTracksLifecycle) {
  AgentFixture f;
  EXPECT_EQ(f.sender_agent->active_sender_count(), 0u);
  f.start(1, 10'000);
  f.start(2, 10'000);
  EXPECT_EQ(f.sender_agent->active_sender_count(), 2u);
  f.sim.run();
  EXPECT_EQ(f.sender_agent->active_sender_count(), 0u);
}

TEST(TransportAgentTest, ReceiverCompletionCallbackFires) {
  AgentFixture f;
  int completions = 0;
  f.receiver_agent->set_receiver_completion_callback(
      [&](const Receiver& r) {
        ++completions;
        EXPECT_TRUE(r.stats().complete);
      });
  f.start(1, 10'000);
  f.sim.run();
  EXPECT_EQ(completions, 1);
}

TEST(TransportAgentTest, StrayPacketsIgnored) {
  // ACKs / data for unknown flows must not crash the agent.
  AgentFixture f;
  net::Packet stray;
  stray.flow = 99;
  stray.type = net::PacketType::ack;
  stray.src = f.dumbbell.receivers[0];
  stray.dst = f.dumbbell.senders[0];
  stray.size_bytes = 52;
  f.net.node(f.dumbbell.receivers[0]).send(stray);
  stray.type = net::PacketType::data;
  stray.src = f.dumbbell.senders[0];
  stray.dst = f.dumbbell.receivers[0];
  f.net.node(f.dumbbell.senders[0]).send(stray);
  f.sim.run();  // no crash, nothing recorded
  EXPECT_EQ(f.sender_agent->completed().size(), 0u);
}

// --- delivery hardening (checksum + dedup) ----------------------------------

/// Corrupts or duplicates every matching packet — the adversarial-path
/// conditions src/netfault/ injects, scripted deterministically here.
class EveryPacketHook final : public net::FaultHook {
 public:
  explicit EveryPacketHook(net::FaultDecision decision,
                           net::PacketType only = net::PacketType::data,
                           int limit = -1)
      : decision_{decision}, only_{only}, limit_{limit} {}

  net::FaultDecision on_transmit(const net::Packet& packet,
                                 sim::Time /*now*/) override {
    if (packet.type != only_ || limit_ == 0) return {};
    if (limit_ > 0) --limit_;
    return decision_;
  }

 private:
  net::FaultDecision decision_;
  net::PacketType only_;
  int limit_;
};

TEST(TransportAgentTest, CleanRunRejectsNothing) {
  AgentFixture f;
  f.start(1, 30'000);
  f.sim.run();
  const DeliveryStats& r = f.receiver_agent->delivery_stats();
  EXPECT_GT(r.accepted, 0u);
  EXPECT_EQ(r.corrupted_rejected, 0u);
  EXPECT_EQ(r.duplicate_rejected, 0u);
  EXPECT_EQ(f.sender_agent->delivery_stats().duplicate_rejected, 0u);
}

TEST(TransportAgentTest, DuplicatedDataIsDeliveredExactlyOnce) {
  AgentFixture f;
  net::FaultDecision dup;
  dup.duplicates = 1;
  EveryPacketHook hook{dup};
  f.dumbbell.bottleneck_forward->set_fault_hook(&hook);
  SenderBase& flow = f.start(1, 30'000);
  f.sim.run();
  ASSERT_TRUE(flow.complete());
  const DeliveryStats& r = f.receiver_agent->delivery_stats();
  // Every data packet arrived twice; the duplicate filter ate one of each,
  // so the receiver saw each segment exactly once.
  EXPECT_GT(r.duplicate_rejected, 0u);
  ASSERT_NE(f.receiver_agent->receiver(1), nullptr);
  EXPECT_EQ(f.receiver_agent->receiver(1)->stats().duplicate_segments, 0u);
  // The reverse path was untouched: the sender rejected nothing.
  EXPECT_EQ(f.sender_agent->delivery_stats().duplicate_rejected, 0u);
}

TEST(TransportAgentTest, DuplicatedAcksAreFilteredAtTheSender) {
  AgentFixture f;
  net::FaultDecision dup;
  dup.duplicates = 2;
  EveryPacketHook hook{dup, net::PacketType::ack};
  f.dumbbell.bottleneck_reverse->set_fault_hook(&hook);
  SenderBase& flow = f.start(1, 30'000);
  f.sim.run();
  ASSERT_TRUE(flow.complete());
  EXPECT_GT(f.sender_agent->delivery_stats().duplicate_rejected, 0u);
  // Dedup means the copies never reached the sender's ACK processing: no
  // spurious loss detection from repeated acknowledgements.
  EXPECT_EQ(flow.record().normal_retx, 0u);
}

TEST(TransportAgentTest, CorruptedDataIsRejectedAndRecovered) {
  AgentFixture f;
  net::FaultDecision corrupt;
  corrupt.corrupt = true;
  EveryPacketHook hook{corrupt, net::PacketType::data, /*limit=*/3};
  f.dumbbell.bottleneck_forward->set_fault_hook(&hook);
  SenderBase& flow = f.start(1, 30'000);
  f.sim.run();
  // The checksum dropped the mangled payloads; retransmission recovered.
  ASSERT_TRUE(flow.complete());
  EXPECT_EQ(f.receiver_agent->delivery_stats().corrupted_rejected, 3u);
  EXPECT_GT(flow.record().normal_retx + flow.record().timeouts, 0u);
}

}  // namespace
}  // namespace halfback::transport
