// Connection-establishment robustness: SYN and SYN-ACK loss, retry
// backoff, and its interaction with each scheme's startup.
#include <gtest/gtest.h>

#include "support/dumbbell_fixture.h"

namespace halfback::transport {
namespace {

using schemes::Scheme;
using halfback::testing::DumbbellFixture;
using namespace halfback::sim::literals;

TEST(HandshakeTest, SynLossRetriesWithBackoff) {
  DumbbellFixture f;
  int drops = 2;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::syn && drops > 0) {
      --drops;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::tcp, 10'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_EQ(s.record().syn_retx, 2u);
  // Two lost SYNs cost the 1 s + 2 s retry timers.
  EXPECT_GT(s.record().fct(), 3_s);
  EXPECT_LT(s.record().fct(), 4_s);
}

TEST(HandshakeTest, SynAckLossAlsoRecovered) {
  DumbbellFixture f;
  bool dropped = false;
  f.dumbbell.bottleneck_reverse->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::syn_ack && !dropped) {
      dropped = true;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_TRUE(dropped);
  EXPECT_EQ(s.record().syn_retx, 1u);  // sender retried; receiver re-replied
  transport::Receiver* r = f.receiver_for(s.record().flow);
  EXPECT_EQ(r->stats().unique_segments, 70u);
}

TEST(HandshakeTest, GivesUpAfterMaxRetries) {
  // A black-holed path: the sender must stop retrying and never complete,
  // without leaving the simulation spinning.
  DumbbellFixture f;
  f.dumbbell.bottleneck_forward->set_packet_filter(
      [](const net::Packet&) { return false; });
  SenderBase& s = f.start(Scheme::tcp, 10'000);
  f.sim.run();  // drains: finitely many SYN retries, then silence
  EXPECT_FALSE(s.complete());
  EXPECT_EQ(s.record().syn_retx, 8u);  // max_syn_retries
}

TEST(HandshakeTest, HandshakeRttSurvivesSynRetryKarn) {
  // After a SYN retry the handshake sample is ambiguous; the estimator
  // must not be poisoned (Karn) — but the record still reports a value.
  DumbbellFixture f;
  int drops = 1;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::syn && drops > 0) {
      --drops;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  // The retried handshake's measured RTT is ~60 ms (from the second SYN),
  // and pacing used it sanely.
  EXPECT_NEAR(s.record().handshake_rtt.to_ms(), 60.0, 5.0);
  EXPECT_EQ(s.record().timeouts, 0u);
}

TEST(HandshakeTest, PacedSchemesStillPaceAfterSynRetry) {
  DumbbellFixture f;
  int drops = 1;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::syn && drops > 0) {
      --drops;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::jumpstart, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  // 1 s SYN retry + ~3 RTT transfer.
  EXPECT_GT(s.record().fct(), 1_s);
  EXPECT_LT(s.record().fct(), 1.5_s);
  EXPECT_EQ(s.record().normal_retx, 0u);
}

TEST(HandshakeTest, SynBackoffIsCappedDuringLongBlackouts) {
  // A path black-holed for 8.5 s. With pure exponential doubling the SYN
  // retries land at t = 1, 3, 7, 15 s — the flow would not connect until
  // 15 s. Capping the backoff at 2 s keeps probing every 2 s, so the
  // handshake completes shortly after the blackout lifts.
  DumbbellFixture f;
  f.context.sender_config.max_syn_timeout = 2_s;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    return !(p.type == net::PacketType::syn && f.sim.now() < 8.5_s);
  });
  SenderBase& s = f.start(Scheme::tcp, 10'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  // Capped retries fire at 1, 3, 5, 7, 9 s; the 9 s SYN gets through.
  EXPECT_EQ(s.record().syn_retx, 5u);
  EXPECT_GT(s.record().fct(), 9_s);
  EXPECT_LT(s.record().fct(), 10_s);
}

TEST(HandshakeTest, CappedBackoffStillBacksOffBeforeTheCeiling) {
  // The cap must not turn backoff into a fixed interval below the
  // ceiling: the first retries still double (1 s, then 2 s), and only
  // then flatten at max_syn_timeout.
  DumbbellFixture f;
  f.context.sender_config.max_syn_timeout = 2_s;
  std::vector<sim::Time> syn_times;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (p.type != net::PacketType::syn) return true;
    syn_times.push_back(f.sim.now());
    return syn_times.size() > 4;  // let the fifth SYN through
  });
  SenderBase& s = f.start(Scheme::tcp, 10'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  ASSERT_EQ(syn_times.size(), 5u);
  EXPECT_EQ(syn_times[1] - syn_times[0], 1_s);
  EXPECT_EQ(syn_times[2] - syn_times[1], 2_s);
  EXPECT_EQ(syn_times[3] - syn_times[2], 2_s);  // capped, not 4 s
  EXPECT_EQ(syn_times[4] - syn_times[3], 2_s);  // capped, not 8 s
}

}  // namespace
}  // namespace halfback::transport
