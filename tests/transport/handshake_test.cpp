// Connection-establishment robustness: SYN and SYN-ACK loss, retry
// backoff, and its interaction with each scheme's startup.
#include <gtest/gtest.h>

#include "support/dumbbell_fixture.h"

namespace halfback::transport {
namespace {

using schemes::Scheme;
using halfback::testing::DumbbellFixture;
using namespace halfback::sim::literals;

TEST(HandshakeTest, SynLossRetriesWithBackoff) {
  DumbbellFixture f;
  int drops = 2;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::syn && drops > 0) {
      --drops;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::tcp, 10'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_EQ(s.record().syn_retx, 2u);
  // Two lost SYNs cost the 1 s + 2 s retry timers.
  EXPECT_GT(s.record().fct(), 3_s);
  EXPECT_LT(s.record().fct(), 4_s);
}

TEST(HandshakeTest, SynAckLossAlsoRecovered) {
  DumbbellFixture f;
  bool dropped = false;
  f.dumbbell.bottleneck_reverse->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::syn_ack && !dropped) {
      dropped = true;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_TRUE(dropped);
  EXPECT_EQ(s.record().syn_retx, 1u);  // sender retried; receiver re-replied
  transport::Receiver* r = f.receiver_for(s.record().flow);
  EXPECT_EQ(r->stats().unique_segments, 70u);
}

TEST(HandshakeTest, GivesUpAfterMaxRetries) {
  // A black-holed path: the sender must stop retrying and never complete,
  // without leaving the simulation spinning.
  DumbbellFixture f;
  f.dumbbell.bottleneck_forward->set_packet_filter(
      [](const net::Packet&) { return false; });
  SenderBase& s = f.start(Scheme::tcp, 10'000);
  f.sim.run();  // drains: finitely many SYN retries, then silence
  EXPECT_FALSE(s.complete());
  EXPECT_EQ(s.record().syn_retx, 8u);  // max_syn_retries
}

TEST(HandshakeTest, HandshakeRttSurvivesSynRetryKarn) {
  // After a SYN retry the handshake sample is ambiguous; the estimator
  // must not be poisoned (Karn) — but the record still reports a value.
  DumbbellFixture f;
  int drops = 1;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::syn && drops > 0) {
      --drops;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  // The retried handshake's measured RTT is ~60 ms (from the second SYN),
  // and pacing used it sanely.
  EXPECT_NEAR(s.record().handshake_rtt.to_ms(), 60.0, 5.0);
  EXPECT_EQ(s.record().timeouts, 0u);
}

TEST(HandshakeTest, PacedSchemesStillPaceAfterSynRetry) {
  DumbbellFixture f;
  int drops = 1;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::syn && drops > 0) {
      --drops;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::jumpstart, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  // 1 s SYN retry + ~3 RTT transfer.
  EXPECT_GT(s.record().fct(), 1_s);
  EXPECT_LT(s.record().fct(), 1.5_s);
  EXPECT_EQ(s.record().normal_retx, 0u);
}

}  // namespace
}  // namespace halfback::transport
