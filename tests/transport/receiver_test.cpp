#include "transport/receiver.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "schemes/factory.h"
#include "transport/agent.h"
#include "sim/simulator.h"

namespace halfback::transport {
namespace {

using namespace halfback::sim::literals;

struct ReceiverFixture {
  sim::Simulator sim{1};
  net::Network net{sim};
  net::NodeId sender_node;
  net::NodeId receiver_node;
  std::vector<net::Packet> acks;
  std::unique_ptr<Receiver> receiver;

  ReceiverFixture() {
    sender_node = net.add_node();
    receiver_node = net.add_node();
    net::LinkConfig fast;
    fast.rate = sim::DataRate::gigabits_per_second(1);
    fast.delay = 1_ms;
    net.connect(sender_node, receiver_node, fast);
    net.compute_routes();
    net.node(sender_node).set_local_handler(
        [this](net::Packet p) { acks.push_back(std::move(p)); });
    receiver = std::make_unique<Receiver>(sim, net.node(receiver_node), sender_node,
                                          /*flow=*/42);
    net.node(receiver_node).set_local_handler(
        [this](net::Packet p) { receiver->on_packet(p); });
  }

  void deliver_syn(std::uint32_t total_segments) {
    net::Packet syn;
    syn.flow = 42;
    syn.type = net::PacketType::syn;
    syn.src = sender_node;
    syn.dst = receiver_node;
    syn.size_bytes = net::kControlWireBytes;
    syn.total_segments = total_segments;
    syn.uid = 77;
    net.node(sender_node).send(syn);
    sim.run();
  }

  void deliver_data(std::uint32_t seq, std::uint32_t total, std::uint64_t uid = 0) {
    net::Packet d;
    d.flow = 42;
    d.type = net::PacketType::data;
    d.src = sender_node;
    d.dst = receiver_node;
    d.size_bytes = net::kSegmentWireBytes;
    d.seq = seq;
    d.total_segments = total;
    d.uid = uid != 0 ? uid : 1000 + seq;
    net.node(sender_node).send(d);
    sim.run();
  }
};

TEST(ReceiverTest, SynAckReply) {
  ReceiverFixture f;
  f.deliver_syn(10);
  ASSERT_EQ(f.acks.size(), 1u);
  EXPECT_EQ(f.acks[0].type, net::PacketType::syn_ack);
  EXPECT_EQ(f.acks[0].echo_uid, 77u);
}

TEST(ReceiverTest, DuplicateSynGetsDuplicateSynAck) {
  ReceiverFixture f;
  f.deliver_syn(10);
  f.deliver_syn(10);
  EXPECT_EQ(f.acks.size(), 2u);
  EXPECT_EQ(f.acks[1].type, net::PacketType::syn_ack);
}

TEST(ReceiverTest, InOrderDataAdvancesCumAck) {
  ReceiverFixture f;
  f.deliver_syn(5);
  for (std::uint32_t i = 0; i < 3; ++i) f.deliver_data(i, 5);
  ASSERT_EQ(f.acks.size(), 4u);  // SYN-ACK + 3 ACKs
  EXPECT_EQ(f.acks.back().cum_ack, 3u);
  EXPECT_TRUE(f.acks.back().sacks.empty());
}

TEST(ReceiverTest, GapGeneratesSack) {
  ReceiverFixture f;
  f.deliver_syn(5);
  f.deliver_data(0, 5);
  f.deliver_data(2, 5);  // hole at 1
  const net::Packet& ack = f.acks.back();
  EXPECT_EQ(ack.cum_ack, 1u);
  ASSERT_EQ(ack.sacks.size(), 1u);
  EXPECT_EQ(ack.sacks[0], (net::SackBlock{2, 3}));
}

TEST(ReceiverTest, MultipleSackBlocks) {
  // TCP SACK semantics: the newest run first, then the most recently
  // reported other runs.
  ReceiverFixture f;
  f.deliver_syn(10);
  f.deliver_data(1, 10);
  f.deliver_data(3, 10);
  f.deliver_data(5, 10);
  const net::Packet& ack = f.acks.back();
  EXPECT_EQ(ack.cum_ack, 0u);
  ASSERT_EQ(ack.sacks.size(), 3u);
  EXPECT_EQ(ack.sacks[0], (net::SackBlock{5, 6}));
  EXPECT_EQ(ack.sacks[1], (net::SackBlock{3, 4}));
  EXPECT_EQ(ack.sacks[2], (net::SackBlock{1, 2}));
}

TEST(ReceiverTest, SackBlockLimitHonoured) {
  ReceiverFixture f;
  f.deliver_syn(20);
  for (std::uint32_t seq : {1u, 3u, 5u, 7u, 9u}) f.deliver_data(seq, 20);
  const net::Packet& ack = f.acks.back();
  EXPECT_EQ(ack.sacks.size(), 3u);  // only the 3 newest runs fit
  EXPECT_EQ(ack.sacks[0], (net::SackBlock{9, 10}));
}

TEST(ReceiverTest, SackBlocksMergeAsRunsGrow) {
  ReceiverFixture f;
  f.deliver_syn(10);
  f.deliver_data(2, 10);
  f.deliver_data(4, 10);
  f.deliver_data(3, 10);  // joins runs {2} and {4} into {2,3,4}
  const net::Packet& ack = f.acks.back();
  ASSERT_GE(ack.sacks.size(), 1u);
  EXPECT_EQ(ack.sacks[0], (net::SackBlock{2, 5}));
  // The merged run must not be reported twice.
  for (std::size_t i = 1; i < ack.sacks.size(); ++i) {
    EXPECT_NE(ack.sacks[i].begin, 2u);
  }
}

TEST(ReceiverTest, HoleFillMergesSacksIntoCum) {
  ReceiverFixture f;
  f.deliver_syn(5);
  f.deliver_data(0, 5);
  f.deliver_data(2, 5);
  f.deliver_data(1, 5);  // fills the hole
  const net::Packet& ack = f.acks.back();
  EXPECT_EQ(ack.cum_ack, 3u);
  EXPECT_TRUE(ack.sacks.empty());
}

TEST(ReceiverTest, DuplicateDataCountedAndStillAcked) {
  ReceiverFixture f;
  f.deliver_syn(5);
  f.deliver_data(0, 5);
  f.deliver_data(0, 5);
  EXPECT_EQ(f.receiver->stats().duplicate_segments, 1u);
  EXPECT_EQ(f.receiver->stats().unique_segments, 1u);
  EXPECT_EQ(f.acks.size(), 3u);  // SYN-ACK + 2 ACKs (dup ACK too)
}

TEST(ReceiverTest, AckEchoesTriggerUid) {
  ReceiverFixture f;
  f.deliver_syn(5);
  f.deliver_data(0, 5, /*uid=*/5555);
  EXPECT_EQ(f.acks.back().echo_uid, 5555u);
  EXPECT_EQ(f.acks.back().seq, 0u);
}

TEST(ReceiverTest, CompletionCallbackOnAllSegments) {
  ReceiverFixture f;
  bool complete = false;
  // CompletionRef is non-owning: hoist the callable to a local lvalue.
  auto on_done = [&](const Receiver& r) {
    complete = true;
    EXPECT_TRUE(r.stats().complete);
  };
  f.receiver->set_completion_callback(Receiver::CompletionRef{on_done});
  f.deliver_syn(3);
  f.deliver_data(0, 3);
  f.deliver_data(2, 3);
  EXPECT_FALSE(complete);
  f.deliver_data(1, 3);
  EXPECT_TRUE(complete);
  EXPECT_EQ(f.receiver->cum_ack(), 3u);
}

TEST(ReceiverTest, CompletionFiresOnce) {
  ReceiverFixture f;
  int completions = 0;
  auto on_done = [&](const Receiver&) { ++completions; };
  f.receiver->set_completion_callback(Receiver::CompletionRef{on_done});
  f.deliver_syn(2);
  f.deliver_data(0, 2);
  f.deliver_data(1, 2);
  f.deliver_data(1, 2);  // duplicate after completion
  EXPECT_EQ(completions, 1);
}

struct DelackFixture : ReceiverFixture {
  DelackFixture() {
    transport::Receiver::Config config;
    config.delayed_ack = true;
    receiver = std::make_unique<Receiver>(sim, net.node(receiver_node), sender_node,
                                          /*flow=*/42, config);
    net.node(receiver_node).set_local_handler(
        [this](net::Packet p) { receiver->on_packet(p); });
  }

  /// Like deliver_data, but does not run long enough for the 40 ms delack
  /// timer to fire.
  void deliver_data_briefly(std::uint32_t seq, std::uint32_t total) {
    net::Packet d;
    d.flow = 42;
    d.type = net::PacketType::data;
    d.src = sender_node;
    d.dst = receiver_node;
    d.size_bytes = net::kSegmentWireBytes;
    d.seq = seq;
    d.total_segments = total;
    d.uid = 1000 + seq;
    net.node(sender_node).send(d);
    sim.run_until(sim.now() + 5_ms);
  }
};

TEST(ReceiverDelayedAckTest, AcksEverySecondInOrderSegment) {
  DelackFixture f;
  f.deliver_syn(10);
  f.deliver_data_briefly(0, 10);  // held
  EXPECT_EQ(f.acks.size(), 1u);   // only the SYN-ACK
  f.deliver_data_briefly(1, 10);  // second in-order arrival -> ACK now
  ASSERT_EQ(f.acks.size(), 2u);
  EXPECT_EQ(f.acks.back().cum_ack, 2u);
}

TEST(ReceiverDelayedAckTest, TimerFlushesLoneSegment) {
  DelackFixture f;
  f.deliver_syn(10);
  f.deliver_data_briefly(0, 10);
  EXPECT_EQ(f.acks.size(), 1u);
  f.sim.run_until(f.sim.now() + 100_ms);  // delack timeout is 40 ms
  ASSERT_EQ(f.acks.size(), 2u);
  EXPECT_EQ(f.acks.back().cum_ack, 1u);
}

TEST(ReceiverDelayedAckTest, OutOfOrderArrivalAcksImmediately) {
  DelackFixture f;
  f.deliver_syn(10);
  f.deliver_data(2, 10);  // hole at 0,1: dupACK duty, no delay
  ASSERT_EQ(f.acks.size(), 2u);
  EXPECT_EQ(f.acks.back().cum_ack, 0u);
  ASSERT_EQ(f.acks.back().sacks.size(), 1u);
}

TEST(ReceiverDelayedAckTest, HalvesAckCountOnBulkTransfer) {
  DelackFixture f;
  f.deliver_syn(20);
  for (std::uint32_t i = 0; i < 20; ++i) f.deliver_data_briefly(i, 20);
  // ~one ACK per two segments (plus the SYN-ACK).
  EXPECT_LE(f.acks.size(), 12u);
  EXPECT_GE(f.acks.size(), 10u);
  EXPECT_EQ(f.acks.back().cum_ack, 20u);
}

TEST(ReceiverDelayedAckTest, RoprClockHalvesUnderDelayedAcks) {
  // The ACK clock drives ROPR: with delayed ACKs at the receiver, Halfback
  // sends roughly half as many proactive copies (~33% of the flow instead
  // of ~50%) and the phase still terminates.
  sim::Simulator sim{1};
  net::Network net{sim};
  net::DumbbellConfig topo;
  topo.sender_count = 1;
  topo.receiver_count = 1;
  net::Dumbbell d = net::build_dumbbell(net, topo);
  transport::TransportAgent sender_agent{sim, net, d.senders[0]};
  transport::TransportAgent receiver_agent{sim, net, d.receivers[0]};
  transport::Receiver::Config rc;
  rc.delayed_ack = true;
  receiver_agent.set_receiver_config(rc);

  schemes::SchemeContext context;
  auto sender = schemes::make_sender(schemes::Scheme::halfback, context, sim,
                                     net.node(d.senders[0]), d.receivers[0], 1,
                                     100'000);
  transport::SenderBase& flow = sender_agent.start_flow(std::move(sender));
  sim.run();
  ASSERT_TRUE(flow.complete());
  EXPECT_LT(flow.record().proactive_retx, 30u);  // vs ~35 with per-packet ACKs
  EXPECT_GT(flow.record().proactive_retx, 10u);
}

TEST(ReceiverTest, DataBeforeSynStillWorks) {
  // SYN-ACK loss can lead to data arriving at a fresh receiver.
  ReceiverFixture f;
  f.deliver_data(0, 4);
  EXPECT_EQ(f.receiver->stats().total_segments, 4u);
  EXPECT_EQ(f.receiver->stats().unique_segments, 1u);
  EXPECT_EQ(f.acks.back().cum_ack, 1u);
}

}  // namespace
}  // namespace halfback::transport
