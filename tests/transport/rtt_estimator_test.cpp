#include "transport/rtt_estimator.h"

#include <gtest/gtest.h>

namespace halfback::transport {
namespace {

using sim::Time;
using namespace halfback::sim::literals;

TEST(RttEstimatorTest, InitialRtoBeforeSamples) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), 1_s);
}

TEST(RttEstimatorTest, FirstSampleSetsSrttAndVar) {
  RttEstimator est;
  est.add_sample(400_ms);
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt(), 400_ms);
  EXPECT_EQ(est.rttvar(), 200_ms);
  // RTO = SRTT + 4*RTTVAR = 1200 ms (above the 1 s floor).
  EXPECT_EQ(est.rto(), 1200_ms);
}

TEST(RttEstimatorTest, SmoothingConvergesToStableRtt) {
  RttEstimator est;
  for (int i = 0; i < 100; ++i) est.add_sample(60_ms);
  EXPECT_NEAR(est.srtt().to_ms(), 60.0, 0.5);
  EXPECT_NEAR(est.rttvar().to_ms(), 0.0, 1.0);
}

TEST(RttEstimatorTest, MinRtoClampsLow) {
  RttEstimator est;
  for (int i = 0; i < 100; ++i) est.add_sample(1_ms);
  EXPECT_EQ(est.rto(), 1_s);  // RFC 6298 floor
}

TEST(RttEstimatorTest, ConfigurableMinRto) {
  RttEstimator::Config config;
  config.min_rto = 10_ms;
  RttEstimator est{config};
  for (int i = 0; i < 100; ++i) est.add_sample(1_ms);
  EXPECT_LT(est.rto(), 200_ms);
  EXPECT_GE(est.rto(), 10_ms);
}

TEST(RttEstimatorTest, BackoffDoublesRto) {
  RttEstimator est;
  est.add_sample(100_ms);
  Time base = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto(), base * 2.0);
  est.backoff();
  EXPECT_EQ(est.rto(), base * 4.0);
}

TEST(RttEstimatorTest, NewSampleResetsBackoff) {
  RttEstimator est;
  est.add_sample(100_ms);
  Time base = est.rto();
  est.backoff();
  est.add_sample(100_ms);
  EXPECT_LE(est.rto(), base + 1_ms);
}

TEST(RttEstimatorTest, ResetBackoffExplicit) {
  RttEstimator est;
  est.add_sample(100_ms);
  Time base = est.rto();
  est.backoff();
  est.reset_backoff();
  EXPECT_EQ(est.rto(), base);
}

TEST(RttEstimatorTest, MaxRtoCaps) {
  RttEstimator::Config config;
  config.max_rto = 2_s;
  RttEstimator est{config};
  for (int i = 0; i < 20; ++i) est.backoff();
  EXPECT_EQ(est.rto(), 2_s);
}

TEST(RttEstimatorTest, TracksMinAndLatest) {
  RttEstimator est;
  est.add_sample(100_ms);
  est.add_sample(40_ms);
  est.add_sample(80_ms);
  EXPECT_EQ(est.min_rtt(), 40_ms);
  EXPECT_EQ(est.latest_rtt(), 80_ms);
}

TEST(RttEstimatorTest, VarianceTracksJitter) {
  RttEstimator est;
  for (int i = 0; i < 50; ++i) est.add_sample(i % 2 == 0 ? 40_ms : 80_ms);
  EXPECT_GT(est.rttvar(), 10_ms);
}

TEST(RttEstimatorTest, IgnoresNegativeSamples) {
  RttEstimator est;
  est.add_sample(Time::milliseconds(-5));
  EXPECT_FALSE(est.has_sample());
}

}  // namespace
}  // namespace halfback::transport
