// Randomized model-checking of the Scoreboard against a brute-force
// reference implementation: thousands of random send/ACK/loss interleavings
// must produce identical pipe counts, ACK deltas and completion state.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "sim/random.h"
#include "transport/scoreboard.h"

namespace halfback::transport {
namespace {

using namespace halfback::sim::literals;

/// Trial count, overridable via HALFBACK_FUZZ_ITERS so CI sanitizer jobs can
/// run a deeper sweep than the default local/developer run.
int fuzz_iterations(int fallback) {
  const char* env = std::getenv("HALFBACK_FUZZ_ITERS");
  if (env == nullptr) return fallback;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

/// Straightforward O(n)-everything reference model.
class ReferenceScoreboard {
 public:
  explicit ReferenceScoreboard(std::uint32_t total) : total_{total} {}

  void on_sent(std::uint32_t seq, bool proactive) {
    if (seq < cum_) return;
    ++times_sent_[seq];
    if (proactive) ++proactive_[seq];
    if (lost_.contains(seq) && !proactive) retx_done_.insert(seq);
  }

  std::uint32_t apply_ack(std::uint32_t cum, const std::vector<net::SackBlock>& sacks) {
    std::uint32_t newly = 0;
    if (cum > cum_) {
      for (std::uint32_t s = cum_; s < cum; ++s) {
        if (!sacked_.contains(s)) ++newly;
      }
      cum_ = std::min(cum, total_);
    }
    for (const net::SackBlock& b : sacks) {
      for (std::uint32_t s = std::max(b.begin, cum_); s < b.end && s < total_; ++s) {
        if (sacked_.insert(s).second) ++newly;
      }
    }
    return newly;
  }

  std::vector<std::uint32_t> detect_losses(int threshold) {
    std::vector<std::uint32_t> newly;
    for (std::uint32_t seq = cum_; seq < total_; ++seq) {
      if (!times_sent_.contains(seq) || sacked_.contains(seq) || lost_.contains(seq)) {
        continue;
      }
      int above = 0;
      for (std::uint32_t s = seq + 1; s < total_; ++s) {
        if (sacked_.contains(s) && s >= cum_) ++above;
      }
      if (above >= threshold) {
        lost_.insert(seq);
        retx_done_.erase(seq);
        newly.push_back(seq);
      }
    }
    return newly;
  }

  std::uint32_t pipe() const {
    std::uint32_t count = 0;
    for (const auto& [seq, times] : times_sent_) {
      if (seq < cum_ || sacked_.contains(seq)) continue;
      if (lost_.contains(seq) && !retx_done_.contains(seq)) continue;
      ++count;
    }
    return count;
  }

  bool complete() const { return cum_ >= total_; }
  std::uint32_t cum() const { return cum_; }

 private:
  std::uint32_t total_;
  std::uint32_t cum_ = 0;
  std::map<std::uint32_t, int> times_sent_;
  std::map<std::uint32_t, int> proactive_;
  std::set<std::uint32_t> sacked_;
  std::set<std::uint32_t> lost_;
  std::set<std::uint32_t> retx_done_;
};

TEST(ScoreboardFuzzTest, MatchesReferenceModelOnRandomTraces) {
  sim::Random rng{2024};
  const int trials = fuzz_iterations(200);
  for (int trial = 0; trial < trials; ++trial) {
    const auto total = static_cast<std::uint32_t>(rng.uniform_int(1, 60));
    Scoreboard real{total};
    ReferenceScoreboard ref{total};

    std::uint32_t receiver_cum = 0;
    std::set<std::uint32_t> receiver_has;
    std::uint64_t uid = 1;

    for (int step = 0; step < 300 && !real.complete(); ++step) {
      const double op = rng.uniform();
      if (op < 0.45) {
        // Send: next unsent, or a random earlier one (retransmission).
        std::uint32_t seq;
        if (auto next = real.next_unsent(); next.has_value() && rng.bernoulli(0.7)) {
          seq = *next;
        } else {
          seq = static_cast<std::uint32_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
        }
        const bool proactive = rng.bernoulli(0.2);
        real.on_sent(seq, uid++, 1_ms, proactive);
        ref.on_sent(seq, proactive);
        // The "network" delivers it with probability 0.7.
        if (rng.bernoulli(0.7)) {
          receiver_has.insert(seq);
          while (receiver_has.contains(receiver_cum)) ++receiver_cum;
        }
      } else if (op < 0.85) {
        // Deliver an ACK reflecting receiver state: cum + up to 3 blocks.
        std::vector<net::SackBlock> sacks;
        std::uint32_t s = receiver_cum;
        while (s < total && sacks.size() < 3) {
          while (s < total && !receiver_has.contains(s)) ++s;
          if (s >= total) break;
          net::SackBlock block{s, s};
          while (s < total && receiver_has.contains(s)) ++s;
          block.end = s;
          sacks.push_back(block);
        }
        AckUpdate update = real.apply_ack(receiver_cum, sacks);
        std::uint32_t ref_newly = ref.apply_ack(receiver_cum, sacks);
        ASSERT_EQ(update.newly_acked_total(), ref_newly) << "trial " << trial;
      } else {
        auto real_losses = real.detect_losses(3);
        auto ref_losses = ref.detect_losses(3);
        ASSERT_EQ(real_losses, ref_losses) << "trial " << trial;
      }
      ASSERT_EQ(real.pipe(), ref.pipe()) << "trial " << trial << " step " << step;
      ASSERT_EQ(real.cum_ack(), ref.cum()) << "trial " << trial;
      ASSERT_EQ(real.complete(), ref.complete()) << "trial " << trial;
    }
  }
}

TEST(ScoreboardFuzzTest, NextLostNeedingRetxNeverReturnsAckedSegments) {
  sim::Random rng{77};
  const int trials = fuzz_iterations(100);
  for (int trial = 0; trial < trials; ++trial) {
    const auto total = static_cast<std::uint32_t>(rng.uniform_int(2, 40));
    Scoreboard sb{total};
    std::uint64_t uid = 1;
    for (std::uint32_t s = 0; s < total; ++s) sb.on_sent(s, uid++, 1_ms, false);
    for (int step = 0; step < 50; ++step) {
      const auto cum = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(total)));
      const auto lo = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
      const auto hi = static_cast<std::uint32_t>(
          rng.uniform_int(lo, static_cast<std::int64_t>(total)));
      sb.apply_ack(cum, {{lo, hi}});
      sb.detect_losses(3);
      if (auto lost = sb.next_lost_needing_retx()) {
        EXPECT_GE(*lost, sb.cum_ack());
        EXPECT_FALSE(sb.is_acked(*lost));
      }
    }
  }
}

}  // namespace
}  // namespace halfback::transport
