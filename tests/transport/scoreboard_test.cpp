#include "transport/scoreboard.h"

#include <gtest/gtest.h>

#include <limits>

namespace halfback::transport {
namespace {

using sim::Time;
using namespace halfback::sim::literals;

void send_range(Scoreboard& sb, std::uint32_t begin, std::uint32_t end,
                Time at = 1_ms) {
  for (std::uint32_t seq = begin; seq < end; ++seq) {
    sb.on_sent(seq, 1000 + seq, at, /*proactive=*/false);
  }
}

TEST(ScoreboardTest, RejectsEmptyFlow) {
  EXPECT_THROW(Scoreboard{0}, std::invalid_argument);
}

TEST(ScoreboardTest, NextUnsentAdvances) {
  Scoreboard sb{5};
  EXPECT_EQ(sb.next_unsent().value(), 0u);
  sb.on_sent(0, 1, 1_ms, false);
  EXPECT_EQ(sb.next_unsent().value(), 1u);
  send_range(sb, 1, 5);
  EXPECT_FALSE(sb.next_unsent().has_value());
  EXPECT_TRUE(sb.all_sent_once());
}

TEST(ScoreboardTest, CumAckAdvancesAndTrims) {
  Scoreboard sb{10};
  send_range(sb, 0, 5);
  AckUpdate u = sb.apply_ack(3, {});
  EXPECT_TRUE(u.advanced());
  EXPECT_EQ(u.newly_cum_acked, 3u);
  EXPECT_EQ(sb.cum_ack(), 3u);
  // State below the cumulative ACK is forgotten.
  EXPECT_EQ(sb.state(2), nullptr);
  EXPECT_NE(sb.state(3), nullptr);
}

TEST(ScoreboardTest, SackMarksSegments) {
  Scoreboard sb{10};
  send_range(sb, 0, 6);
  AckUpdate u = sb.apply_ack(1, {{3, 5}});
  EXPECT_EQ(u.newly_sacked, (std::vector<std::uint32_t>{3, 4}));
  EXPECT_TRUE(sb.is_sacked(3));
  EXPECT_TRUE(sb.is_sacked(4));
  EXPECT_FALSE(sb.is_sacked(2));
  EXPECT_TRUE(sb.is_acked(0));   // cum
  EXPECT_TRUE(sb.is_acked(4));   // sack
  EXPECT_FALSE(sb.is_acked(5));
}

TEST(ScoreboardTest, RepeatedSackNotDoubleCounted) {
  Scoreboard sb{10};
  send_range(sb, 0, 6);
  sb.apply_ack(1, {{3, 5}});
  AckUpdate u = sb.apply_ack(1, {{3, 5}});
  EXPECT_TRUE(u.newly_sacked.empty());
  EXPECT_EQ(u.newly_acked_total(), 0u);
}

TEST(ScoreboardTest, CumAckOverSackedSegmentsNotDoubleCounted) {
  Scoreboard sb{10};
  send_range(sb, 0, 6);
  sb.apply_ack(0, {{1, 3}});  // segments 1-2 SACKed
  AckUpdate u = sb.apply_ack(3, {});
  // Segments 0,1,2 newly cum-acked, but 1,2 were already counted via SACK.
  EXPECT_EQ(u.newly_cum_acked, 1u);
}

TEST(ScoreboardTest, DetectLossesRequiresDupThreshold) {
  Scoreboard sb{10};
  send_range(sb, 0, 6);
  sb.apply_ack(0, {{1, 3}});  // two SACKed above segment 0
  EXPECT_TRUE(sb.detect_losses(3).empty());
  sb.apply_ack(0, {{1, 4}});  // three SACKed above segment 0
  auto lost = sb.detect_losses(3);
  EXPECT_EQ(lost, (std::vector<std::uint32_t>{0}));
  const SegmentState* s = sb.state(0);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->lost);
}

TEST(ScoreboardTest, DetectLossesFindsMultipleHoles) {
  Scoreboard sb{10};
  send_range(sb, 0, 8);
  // Holes at 0, 2; SACKed: 1, 3, 4, 5 -> both holes have >= 3 SACKs above.
  sb.apply_ack(0, {{1, 2}, {3, 6}});
  auto lost = sb.detect_losses(3);
  EXPECT_EQ(lost, (std::vector<std::uint32_t>{0, 2}));
}

TEST(ScoreboardTest, LossNotRedetected) {
  Scoreboard sb{10};
  send_range(sb, 0, 6);
  sb.apply_ack(0, {{1, 4}});
  EXPECT_EQ(sb.detect_losses(3).size(), 1u);
  EXPECT_TRUE(sb.detect_losses(3).empty());
}

TEST(ScoreboardTest, NextLostNeedingRetxAndRetxClears) {
  Scoreboard sb{10};
  send_range(sb, 0, 6);
  sb.apply_ack(0, {{1, 4}});
  sb.detect_losses(3);
  ASSERT_EQ(sb.next_lost_needing_retx().value(), 0u);
  // Retransmit it (not proactive): need cleared.
  sb.on_sent(0, 2000, 5_ms, /*proactive=*/false);
  EXPECT_FALSE(sb.next_lost_needing_retx().has_value());
}

TEST(ScoreboardTest, ProactiveSendDoesNotClearLossRetxNeed) {
  Scoreboard sb{10};
  send_range(sb, 0, 6);
  sb.apply_ack(0, {{1, 4}});
  sb.detect_losses(3);
  sb.on_sent(0, 2000, 5_ms, /*proactive=*/true);
  // ROPR's proactive copy doesn't satisfy the normal-recovery obligation.
  EXPECT_EQ(sb.next_lost_needing_retx().value(), 0u);
}

TEST(ScoreboardTest, PipeCountsOutstandingOnly) {
  Scoreboard sb{10};
  send_range(sb, 0, 6);
  EXPECT_EQ(sb.pipe(), 6u);
  sb.apply_ack(2, {{4, 5}});
  EXPECT_EQ(sb.pipe(), 3u);  // 2, 3, 5 outstanding; 4 SACKed
  sb.apply_ack(2, {{3, 6}});
  sb.detect_losses(3);       // segment 2 deemed lost
  EXPECT_EQ(sb.pipe(), 0u);  // lost & not retransmitted leaves the pipe
  sb.on_sent(2, 3000, 6_ms, false);
  EXPECT_EQ(sb.pipe(), 1u);  // the retransmission is in flight
}

TEST(ScoreboardTest, MarkAllOutstandingLost) {
  Scoreboard sb{10};
  send_range(sb, 0, 6);
  sb.apply_ack(1, {{3, 4}});
  sb.mark_all_outstanding_lost();
  // 1, 2, 4, 5 lost (0 acked, 3 SACKed).
  EXPECT_EQ(sb.next_lost_needing_retx().value(), 1u);
  EXPECT_EQ(sb.pipe(), 0u);
}

TEST(ScoreboardTest, CompleteWhenCumReachesTotal) {
  Scoreboard sb{3};
  send_range(sb, 0, 3);
  EXPECT_FALSE(sb.complete());
  sb.apply_ack(3, {});
  EXPECT_TRUE(sb.complete());
}

TEST(ScoreboardTest, FlowControlLimit) {
  Scoreboard sb{200};
  EXPECT_EQ(sb.flow_control_limit(97), 97u);
  send_range(sb, 0, 97);
  sb.apply_ack(50, {});
  EXPECT_EQ(sb.flow_control_limit(97), 147u);
  // Never beyond the flow.
  sb.apply_ack(150, {});
  EXPECT_EQ(sb.flow_control_limit(97), 200u);
}

TEST(ScoreboardTest, StaleRetransmissionOfAckedSegmentIgnored) {
  Scoreboard sb{5};
  send_range(sb, 0, 5);
  sb.apply_ack(3, {});
  sb.on_sent(1, 999, 9_ms, false);  // stale; must not crash or corrupt
  EXPECT_EQ(sb.cum_ack(), 3u);
  EXPECT_EQ(sb.pipe(), 2u);
}

TEST(ScoreboardTest, SlidingWindowMemoryBounded) {
  // A "100 MB" flow: memory must stay proportional to the window, not the
  // flow. Walk a window of 100 segments across 70000.
  Scoreboard sb{70000};
  std::uint32_t acked = 0;
  while (acked < 69900) {
    std::uint32_t target = std::min(acked + 100, 70000u);
    send_range(sb, sb.highest_sent(), target);
    acked += 100;
    sb.apply_ack(acked, {});
  }
  EXPECT_EQ(sb.cum_ack(), 69900u);
  EXPECT_EQ(sb.pipe(), 0u);
}

TEST(ScoreboardTest, GuardsAgainstMisuse) {
  Scoreboard sb{5};
  EXPECT_THROW(sb.on_sent(5, 1, 1_ms, false), std::logic_error);  // beyond flow
  send_range(sb, 0, 5);
  sb.apply_ack(3, {});
  EXPECT_THROW(sb.ensure_state(1), std::logic_error);  // below the window
}

TEST(ScoreboardTest, CumAckClampedToFlowLength) {
  Scoreboard sb{5};
  send_range(sb, 0, 5);
  sb.apply_ack(100, {});  // corrupt/stale ACK beyond the flow
  EXPECT_EQ(sb.cum_ack(), 5u);
  EXPECT_TRUE(sb.complete());
}

TEST(ScoreboardTest, SackBeyondFlowIgnored) {
  Scoreboard sb{5};
  send_range(sb, 0, 5);
  AckUpdate u = sb.apply_ack(0, {{3, 100}});
  EXPECT_EQ(u.newly_sacked, (std::vector<std::uint32_t>{3, 4}));
}

TEST(ScoreboardTest, TimesSentTracksRetransmissions) {
  Scoreboard sb{5};
  sb.on_sent(0, 1, 1_ms, false);
  sb.on_sent(0, 2, 2_ms, true);
  const SegmentState* s = sb.state(0);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->times_sent, 2);
  EXPECT_EQ(s->proactive_sent, 1);
  EXPECT_EQ(s->last_uid, 2u);
  EXPECT_EQ(s->first_sent, 1_ms);
  EXPECT_EQ(s->last_sent, 2_ms);
}

TEST(ScoreboardTest, TimesSentSaturatesInsteadOfWrapping) {
  constexpr int kMax = std::numeric_limits<std::uint16_t>::max();
  Scoreboard sb{1};
  for (int i = 0; i < kMax + 100; ++i) {
    sb.on_sent(0, static_cast<std::uint64_t>(i + 1), 1_ms, /*proactive=*/true);
  }
  const SegmentState* s = sb.state(0);
  ASSERT_NE(s, nullptr);
  // A wrap would land these back near zero, making the 65636th transmission
  // look like a fresh first send to Karn's filter.
  EXPECT_EQ(s->times_sent, kMax);
  EXPECT_EQ(s->proactive_sent, kMax);
}

}  // namespace
}  // namespace halfback::transport
