#include "transport/tcp_sender.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "sim/simulator.h"
#include "transport/agent.h"

namespace halfback::transport {
namespace {

using namespace halfback::sim::literals;

struct DumbbellFixture {
  sim::Simulator sim{1};
  net::Network net{sim};
  net::Dumbbell dumbbell;
  std::unique_ptr<TransportAgent> sender_agent;
  std::unique_ptr<TransportAgent> receiver_agent;

  explicit DumbbellFixture(net::DumbbellConfig config = {}) {
    config.sender_count = 1;
    config.receiver_count = 1;
    dumbbell = net::build_dumbbell(net, config);
    sender_agent = std::make_unique<TransportAgent>(sim, net, dumbbell.senders[0]);
    receiver_agent = std::make_unique<TransportAgent>(sim, net, dumbbell.receivers[0]);
  }

  SenderBase& start_tcp(std::uint64_t bytes, SenderConfig config = {},
                        std::string name = "tcp") {
    auto sender = std::make_unique<TcpSender>(
        sim, net.node(dumbbell.senders[0]), dumbbell.receivers[0],
        /*flow=*/1, bytes, config, std::move(name));
    return sender_agent->start_flow(std::move(sender));
  }
};

TEST(TcpSenderTest, SmallFlowCompletesInTwoRtts) {
  // 2 segments fit in the initial window: 1 RTT handshake + 1 RTT data.
  DumbbellFixture f;
  SenderBase& s = f.start_tcp(2 * net::kSegmentPayloadBytes);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_GT(s.record().fct(), 120_ms);
  EXPECT_LT(s.record().fct(), 130_ms);
  EXPECT_EQ(s.record().normal_retx, 0u);
}

TEST(TcpSenderTest, HundredKbFlowUsesSlowStart) {
  // 100 KB = 70 segments; slow start 2,4,8,16,32 covers 62 after 5 data
  // RTTs, 6th round finishes. FCT ~ 7 RTTs = 420 ms.
  DumbbellFixture f;
  SenderBase& s = f.start_tcp(100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_EQ(s.record().total_segments, 70u);
  double rtts = s.record().rtts_used();
  EXPECT_GT(rtts, 6.5);
  EXPECT_LT(rtts, 7.6);
  EXPECT_EQ(s.record().normal_retx, 0u);
  EXPECT_EQ(s.record().timeouts, 0u);
}

TEST(TcpSenderTest, Icw10FinishesFaster) {
  DumbbellFixture slow;
  SenderBase& s2 = slow.start_tcp(100'000);
  slow.sim.run();

  DumbbellFixture fast;
  SenderConfig config;
  config.initial_window = 10;
  SenderBase& s10 = fast.start_tcp(100'000, config, "tcp10");
  fast.sim.run();

  ASSERT_TRUE(s2.complete());
  ASSERT_TRUE(s10.complete());
  // 10,20,40 -> 3 data rounds instead of 6.
  EXPECT_LT(s10.record().fct(), s2.record().fct());
  EXPECT_LT(s10.record().rtts_used(), 5.0);
}

TEST(TcpSenderTest, AllDataDeliveredExactlyOnceWithoutLoss) {
  DumbbellFixture f;
  f.start_tcp(100'000);
  f.sim.run();
  Receiver* r = f.receiver_agent->receiver(1);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->stats().complete);
  EXPECT_EQ(r->stats().unique_segments, 70u);
  EXPECT_EQ(r->stats().duplicate_segments, 0u);
}

TEST(TcpSenderTest, RecoversFromLossViaFastRetransmit) {
  // Tiny bottleneck buffer forces drops during slow start; SACK-based
  // recovery must still complete the flow without data corruption.
  net::DumbbellConfig config;
  config.bottleneck_buffer_bytes = 20'000;
  DumbbellFixture f{config};
  SenderBase& s = f.start_tcp(100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_GT(s.record().normal_retx, 0u);
  Receiver* r = f.receiver_agent->receiver(1);
  EXPECT_EQ(r->stats().unique_segments, 70u);
}

TEST(TcpSenderTest, CongestionWindowHalvesOnLossEpisode) {
  net::DumbbellConfig config;
  config.bottleneck_buffer_bytes = 20'000;
  DumbbellFixture f{config};
  auto sender = std::make_unique<TcpSender>(
      f.sim, f.net.node(f.dumbbell.senders[0]), f.dumbbell.receivers[0],
      /*flow=*/1, 100'000, SenderConfig{}, "tcp");
  TcpSender* tcp = sender.get();
  f.sender_agent->start_flow(std::move(sender));
  double max_cwnd_seen = 0;
  bool saw_recovery = false;
  // Poll cwnd as the sim runs.
  for (int i = 0; i < 20000 && !tcp->complete(); ++i) {
    f.sim.run_until(f.sim.now() + 1_ms);
    max_cwnd_seen = std::max(max_cwnd_seen, tcp->cwnd());
    if (tcp->in_recovery()) saw_recovery = true;
  }
  f.sim.run();
  EXPECT_TRUE(saw_recovery);
  EXPECT_GT(max_cwnd_seen, 8.0);
}

TEST(TcpSenderTest, TailLossTriggersRtoAndStillCompletes) {
  // A sub-packet buffer drops every packet that arrives while another is
  // transmitting: the initial 2-segment burst loses its second segment, and
  // with only 3 segments there are never 3 SACKs above the hole, so the
  // sender must resort to an RTO.
  net::DumbbellConfig config;
  config.bottleneck_buffer_bytes = 1'400;  // less than one segment
  DumbbellFixture f{config};
  SenderBase& s = f.start_tcp(3 * net::kSegmentPayloadBytes);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_GE(s.record().timeouts, 1u);
  Receiver* r = f.receiver_agent->receiver(1);
  EXPECT_EQ(r->stats().unique_segments, 3u);
}

TEST(TcpSenderTest, RespectsFlowControlWindow) {
  // A flow much larger than the 141 KB receive window must never have more
  // than the window outstanding.
  net::DumbbellConfig config;
  config.bottleneck_buffer_bytes = 400'000;  // avoid losses
  DumbbellFixture f{config};
  auto sender = std::make_unique<TcpSender>(
      f.sim, f.net.node(f.dumbbell.senders[0]), f.dumbbell.receivers[0],
      /*flow=*/1, 500'000, SenderConfig{}, "tcp");
  TcpSender* tcp = sender.get();
  f.sender_agent->start_flow(std::move(sender));
  std::uint32_t max_pipe = 0;
  while (!tcp->complete() && f.sim.now() < 60_s) {
    f.sim.run_until(f.sim.now() + 1_ms);
    max_pipe = std::max(max_pipe, tcp->scoreboard().pipe());
  }
  EXPECT_TRUE(tcp->complete());
  EXPECT_LE(max_pipe, 97u);
}

TEST(TcpSenderTest, HandshakeRttMeasured) {
  DumbbellFixture f;
  SenderBase& s = f.start_tcp(10'000);
  f.sim.run();
  EXPECT_NEAR(s.record().handshake_rtt.to_ms(), 60.0, 1.0);
}

TEST(TcpSenderTest, FlowRecordAccountsPackets) {
  DumbbellFixture f;
  SenderBase& s = f.start_tcp(100'000);
  f.sim.run();
  const FlowRecord& r = s.record();
  EXPECT_EQ(r.data_packets_sent, 70u + r.normal_retx + r.proactive_retx);
  EXPECT_GT(r.acks_received, 0u);
  EXPECT_EQ(r.proactive_retx, 0u);  // vanilla TCP never sends proactively
  EXPECT_DOUBLE_EQ(r.fct().to_ms(), (r.completion_time - r.start_time).to_ms());
}

TEST(TcpSenderTest, TwoCompetingFlowsShareAndComplete) {
  net::DumbbellConfig config;
  config.sender_count = 2;
  config.receiver_count = 2;
  sim::Simulator sim{7};
  net::Network net{sim};
  net::Dumbbell d = net::build_dumbbell(net, config);
  TransportAgent a0{sim, net, d.senders[0]};
  TransportAgent a1{sim, net, d.senders[1]};
  TransportAgent r0{sim, net, d.receivers[0]};
  TransportAgent r1{sim, net, d.receivers[1]};

  auto s0 = std::make_unique<TcpSender>(sim, net.node(d.senders[0]), d.receivers[0],
                                        1, 200'000, SenderConfig{}, "tcp");
  auto s1 = std::make_unique<TcpSender>(sim, net.node(d.senders[1]), d.receivers[1],
                                        2, 200'000, SenderConfig{}, "tcp");
  SenderBase& f0 = a0.start_flow(std::move(s0));
  SenderBase& f1 = a1.start_flow(std::move(s1));
  sim.run();
  EXPECT_TRUE(f0.complete());
  EXPECT_TRUE(f1.complete());
}

TEST(TcpSenderTest, ZeroByteFlowStillCompletes) {
  DumbbellFixture f;
  SenderBase& s = f.start_tcp(0);
  f.sim.run();
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.record().total_segments, 1u);
}

}  // namespace
}  // namespace halfback::transport
