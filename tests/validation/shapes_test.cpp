// Figure-level shape validation: the paper's qualitative claims, asserted
// programmatically on scaled-down campaigns. These are the "who wins, by
// roughly what factor, where crossovers fall" checks that EXPERIMENTS.md
// reports; running them in CI keeps the reproduction honest as the code
// evolves. (Each test uses a reduced configuration, so thresholds carry
// slack; the bench binaries produce the full-resolution numbers.)
#include <gtest/gtest.h>

#include "exp/homenet.h"
#include "exp/planetlab.h"
#include "exp/sweep.h"
#include "exp/trace.h"
#include "exp/web.h"
#include "stats/summary.h"

namespace halfback {
namespace {

using namespace halfback::sim::literals;
using schemes::Scheme;

double mean_fct_ms(const std::vector<exp::TrialResult>& trials) {
  stats::Summary s;
  for (const auto& t : trials) s.add(t.record.fct().to_ms());
  return s.mean();
}

// ---------------------------------------------------------------- Fig. 6/7

TEST(ShapeValidation, Fig6PlanetLabOrdering) {
  exp::PlanetLabConfig config;
  config.pair_count = 150;
  config.threads = 8;
  exp::PlanetLabEnv env{config};
  const double halfback = mean_fct_ms(env.run(Scheme::halfback));
  const double jumpstart = mean_fct_ms(env.run(Scheme::jumpstart));
  const double tcp10 = mean_fct_ms(env.run(Scheme::tcp10));
  const double tcp = mean_fct_ms(env.run(Scheme::tcp));
  // §4.2.1: Halfback < JumpStart < TCP-10 < TCP, Halfback ~half of TCP.
  EXPECT_LT(halfback, jumpstart);
  EXPECT_LT(jumpstart, tcp10);
  EXPECT_LT(tcp10, tcp);
  EXPECT_LT(halfback * 1.8, tcp);
}

TEST(ShapeValidation, Fig7PacedSchemesFinishInTwoDataRtts) {
  exp::PlanetLabConfig config;
  config.pair_count = 100;
  config.threads = 8;
  exp::PlanetLabEnv env{config};
  stats::Summary halfback_rtts, tcp_rtts;
  for (const auto& t : env.run(Scheme::halfback)) {
    halfback_rtts.add(t.record.rtts_used());
  }
  for (const auto& t : env.run(Scheme::tcp)) tcp_rtts.add(t.record.rtts_used());
  // Median ~3 total RTTs (handshake + 2 data) vs TCP's ~7 — "one third".
  EXPECT_LT(halfback_rtts.median(), 3.5);
  EXPECT_GT(tcp_rtts.median(), 6.0);
}

// ------------------------------------------------------------------ Fig. 9

TEST(ShapeValidation, Fig9HomeNetworksAlwaysImprove) {
  exp::HomeNetConfig config;
  config.server_count = 25;
  config.threads = 8;
  exp::HomeNetEnv env{config};
  for (const exp::HomeNetProfile& profile : exp::home_profiles()) {
    stats::Summary halfback, tcp;
    for (const auto& t : env.run(Scheme::halfback, profile)) {
      halfback.add(t.record.fct().to_ms());
    }
    for (const auto& t : env.run(Scheme::tcp, profile)) {
      tcp.add(t.record.fct().to_ms());
    }
    EXPECT_LT(halfback.median(), tcp.median()) << profile.name;
  }
}

// ----------------------------------------------------------------- Fig. 12

TEST(ShapeValidation, Fig12CapacityOrdering) {
  exp::UtilizationSweepConfig config;
  config.utilizations = {0.10, 0.30, 0.45, 0.60, 0.75};
  config.duration = 20_s;
  config.threads = 8;
  constexpr std::array<Scheme, 4> set{Scheme::tcp, Scheme::proactive,
                                      Scheme::halfback, Scheme::tcp10};
  auto cells = exp::utilization_sweep(config, set);
  auto capacity = exp::feasible_capacities(
      cells, {}, [](const exp::SweepCell& c) { return c.median_fct_ms; });
  // Proactive collapses first; Halfback sits between it and the TCP family.
  EXPECT_LE(capacity[Scheme::proactive], capacity[Scheme::halfback]);
  EXPECT_LE(capacity[Scheme::halfback], capacity[Scheme::tcp]);
  EXPECT_GE(capacity[Scheme::tcp], 0.60);
  EXPECT_LE(capacity[Scheme::proactive], 0.50);
}

TEST(ShapeValidation, Fig12LowLoadLatencyOrdering) {
  exp::UtilizationSweepConfig config;
  config.utilizations = {0.10};
  config.duration = 20_s;
  config.threads = 8;
  constexpr std::array<Scheme, 4> set{Scheme::tcp, Scheme::tcp10, Scheme::jumpstart,
                                      Scheme::halfback};
  auto cells = exp::utilization_sweep(config, set);
  // At low load: paced schemes ~equal and far below TCP-10 < TCP.
  const double tcp = cells[0].mean_fct_ms;
  const double tcp10 = cells[1].mean_fct_ms;
  const double jumpstart = cells[2].mean_fct_ms;
  const double halfback = cells[3].mean_fct_ms;
  EXPECT_LT(halfback, tcp10);
  EXPECT_LT(jumpstart, tcp10);
  EXPECT_LT(tcp10, tcp);
  EXPECT_NEAR(halfback / jumpstart, 1.0, 0.25);
  // §5: pacing reaches ~half of TCP's FCT at low load.
  EXPECT_LT(halfback, 0.6 * tcp);
}

// ----------------------------------------------------------------- Fig. 13

TEST(ShapeValidation, Fig13MixOrdering) {
  exp::MixSweepConfig config;
  config.utilizations = {0.45};
  config.duration = 25_s;
  config.long_bytes = 2'000'000;
  config.threads = 8;
  constexpr std::array<Scheme, 3> set{Scheme::halfback, Scheme::tcp10,
                                      Scheme::proactive};
  auto cells = exp::mix_sweep(config, set);
  // Short flows: Halfback ~0.44x TCP, TCP-10 in between, Proactive >= 1.
  EXPECT_LT(cells[0].short_fct_normalized, 0.6);
  EXPECT_LT(cells[1].short_fct_normalized, 0.85);
  EXPECT_GT(cells[2].short_fct_normalized, 0.95);
  // Long flows: Halfback's impact small at this load; Proactive's largest.
  EXPECT_LT(cells[0].long_fct_normalized, 1.2);
  EXPECT_GE(cells[2].long_fct_normalized, cells[1].long_fct_normalized - 0.05);
}

// ----------------------------------------------------------------- Fig. 14

TEST(ShapeValidation, Fig14HalfbackIsTcpFriendly) {
  exp::FriendlinessConfig config;
  config.utilizations = {0.20};
  config.duration = 25_s;
  config.threads = 8;
  constexpr std::array<Scheme, 2> set{Scheme::halfback, Scheme::proactive};
  auto points = exp::friendliness_matrix(config, set);
  ASSERT_EQ(points.size(), 2u);
  // Halfback leaves TCP within a few percent of its reference; Proactive
  // is the unfriendliest scheme of the set.
  EXPECT_NEAR(points[0].tcp_fct_vs_reference, 1.0, 0.08);
  EXPECT_GT(points[1].tcp_fct_vs_reference, points[0].tcp_fct_vs_reference - 0.02);
}

// ----------------------------------------------------------------- Fig. 15

TEST(ShapeValidation, Fig15HalfbackShortFlowFinishesFastest) {
  exp::TraceConfig config;
  auto halfback = exp::run_trace(config, exp::TraceScenario::halfback);
  auto tcp = exp::run_trace(config, exp::TraceScenario::single_tcp);
  ASSERT_GT(halfback[1].completion, sim::Time::zero());
  ASSERT_GT(tcp[1].completion, sim::Time::zero());
  EXPECT_LT(halfback[1].completion, tcp[1].completion);
}

// ----------------------------------------------------------------- Fig. 16

TEST(ShapeValidation, Fig16JumpStartCrossesTcpUnderLoad) {
  workload::WebCatalogConfig cc;
  cc.site_count = 25;
  workload::WebsiteCatalog catalog{cc, sim::Random{17}};
  auto bottleneck = sim::DataRate::megabits_per_second(15);

  auto mean_response = [&](Scheme scheme, double util) {
    sim::Random rng{23};
    auto schedule = workload::make_web_schedule(catalog, util, bottleneck, 25_s, rng);
    exp::WebRunner::Config config;
    exp::WebRunner runner{config};
    return runner.run(scheme, catalog, schedule).mean_response_s();
  };
  // At light load JumpStart beats TCP; by ~35% the order flips — the
  // paper's application-level warning.
  EXPECT_LT(mean_response(Scheme::jumpstart, 0.10),
            mean_response(Scheme::tcp, 0.10));
  EXPECT_GT(mean_response(Scheme::jumpstart, 0.35),
            mean_response(Scheme::tcp, 0.35));
}

// ----------------------------------------------------------------- Fig. 17

TEST(ShapeValidation, Fig17AblationsAreWorseThanHalfback) {
  exp::UtilizationSweepConfig config;
  config.utilizations = {0.45, 0.60};
  config.duration = 20_s;
  config.threads = 8;
  config.replications = 3;
  constexpr std::array<Scheme, 3> set{Scheme::halfback, Scheme::halfback_forward,
                                      Scheme::halfback_burst};
  auto cells = exp::utilization_sweep(config, set);
  // Aggregated over both utilizations, the ablations pay for their
  // wasted/bursty copies.
  double halfback = 0, forward = 0, burst = 0, halfback_copies = 0, burst_copies = 0;
  for (std::size_t u = 0; u < 2; ++u) {
    halfback += cells[u * 3 + 0].mean_fct_ms;
    forward += cells[u * 3 + 1].mean_fct_ms;
    burst += cells[u * 3 + 2].mean_fct_ms;
    halfback_copies += cells[u * 3 + 0].mean_proactive_retx;
    burst_copies += cells[u * 3 + 2].mean_proactive_retx;
  }
  EXPECT_LE(halfback, forward * 1.10);
  EXPECT_LE(halfback, burst * 1.10);
  // Burst sends ~double Halfback's proactive copies (§5).
  EXPECT_GT(burst_copies, 1.5 * halfback_copies);
}

}  // namespace
}  // namespace halfback
