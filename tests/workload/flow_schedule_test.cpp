#include "workload/flow_schedule.h"

#include <gtest/gtest.h>

namespace halfback::workload {
namespace {

using namespace halfback::sim::literals;

TEST(FlowScheduleTest, ArrivalsWithinWindow) {
  sim::Random rng{1};
  ScheduleConfig config;
  config.duration = 60_s;
  config.warmup = 5_s;
  auto schedule = make_schedule(FlowSizeDist::fixed(100'000), config, rng);
  ASSERT_FALSE(schedule.empty());
  for (const FlowArrival& f : schedule) {
    EXPECT_GE(f.at, 5_s);
    EXPECT_LT(f.at, 65_s);
    EXPECT_EQ(f.bytes, 100'000u);
  }
}

TEST(FlowScheduleTest, ArrivalsAreSorted) {
  sim::Random rng{2};
  ScheduleConfig config;
  auto schedule = make_schedule(FlowSizeDist::fixed(100'000), config, rng);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].at, schedule[i - 1].at);
  }
}

TEST(FlowScheduleTest, OfferedLoadMatchesTarget) {
  sim::Random rng{3};
  ScheduleConfig config;
  config.target_utilization = 0.5;
  config.duration = 600_s;  // long window for tight statistics
  auto schedule = make_schedule(FlowSizeDist::fixed(100'000), config, rng);
  EXPECT_NEAR(offered_utilization(schedule, config), 0.5, 0.05);
}

TEST(FlowScheduleTest, UtilizationScalesArrivalCount) {
  ScheduleConfig lo_config;
  lo_config.target_utilization = 0.1;
  lo_config.duration = 120_s;
  ScheduleConfig hi_config = lo_config;
  hi_config.target_utilization = 0.8;
  sim::Random rng_lo{4};
  sim::Random rng_hi{4};
  auto lo = make_schedule(FlowSizeDist::fixed(100'000), lo_config, rng_lo);
  auto hi = make_schedule(FlowSizeDist::fixed(100'000), hi_config, rng_hi);
  EXPECT_NEAR(static_cast<double>(hi.size()) / static_cast<double>(lo.size()), 8.0,
              1.5);
}

TEST(FlowScheduleTest, DeterministicGivenSeed) {
  ScheduleConfig config;
  sim::Random a{7};
  sim::Random b{7};
  auto s1 = make_schedule(FlowSizeDist::internet(), config, a);
  auto s2 = make_schedule(FlowSizeDist::internet(), config, b);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].at, s2[i].at);
    EXPECT_EQ(s1[i].bytes, s2[i].bytes);
  }
}

TEST(FlowScheduleTest, InterarrivalsLookExponential) {
  sim::Random rng{8};
  ScheduleConfig config;
  config.target_utilization = 0.5;
  config.duration = 600_s;
  auto schedule = make_schedule(FlowSizeDist::fixed(100'000), config, rng);
  ASSERT_GT(schedule.size(), 100u);
  // Coefficient of variation of exponential interarrivals is 1.
  std::vector<double> gaps;
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    gaps.push_back((schedule[i].at - schedule[i - 1].at).to_seconds());
  }
  double mean = 0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.15);
}

TEST(FlowScheduleTest, RejectsNonpositiveUtilization) {
  sim::Random rng{9};
  ScheduleConfig config;
  config.target_utilization = 0.0;
  EXPECT_THROW(make_schedule(FlowSizeDist::fixed(1000), config, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace halfback::workload
