#include "workload/flow_size.h"

#include <gtest/gtest.h>

namespace halfback::workload {
namespace {

TEST(FlowSizeDistTest, RejectsMalformedCdf) {
  EXPECT_THROW((FlowSizeDist{"x", {{100, 0.0}}}), std::invalid_argument);
  EXPECT_THROW((FlowSizeDist{"x", {{100, 0.1}, {200, 1.0}}}), std::invalid_argument);
  EXPECT_THROW((FlowSizeDist{"x", {{100, 0.0}, {200, 0.9}}}), std::invalid_argument);
  EXPECT_THROW((FlowSizeDist{"x", {{200, 0.0}, {100, 1.0}}}), std::invalid_argument);
  EXPECT_THROW((FlowSizeDist{"x", {{100, 0.0}, {200, 0.5}, {300, 0.4}, {400, 1.0}}}),
               std::invalid_argument);
}

TEST(FlowSizeDistTest, FixedAlwaysReturnsSameSize) {
  FlowSizeDist d = FlowSizeDist::fixed(100'000);
  sim::Random rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 100'000u);
  EXPECT_DOUBLE_EQ(d.mean_bytes(), 100'000.0);
}

TEST(FlowSizeDistTest, SamplesWithinSupport) {
  for (const FlowSizeDist& d :
       {FlowSizeDist::internet(), FlowSizeDist::benson(), FlowSizeDist::vl2()}) {
    sim::Random rng{2};
    for (int i = 0; i < 5000; ++i) {
      const double s = static_cast<double>(d.sample(rng));
      EXPECT_GE(s, d.min_bytes()) << d.name();
      EXPECT_LE(s, d.max_bytes()) << d.name();
    }
  }
}

TEST(FlowSizeDistTest, EmpiricalCdfMatchesControlPoints) {
  FlowSizeDist d = FlowSizeDist::internet();
  sim::Random rng{3};
  const int n = 50000;
  int below_100k = 0;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng) <= 100'000) ++below_100k;
  }
  // Control point: 99% of flows <= 100 KB (§1's "around 99% of flows carry
  // traffic less than 100 KB").
  EXPECT_NEAR(static_cast<double>(below_100k) / n, 0.99, 0.01);
}

TEST(FlowSizeDistTest, MeanMatchesMonteCarlo) {
  FlowSizeDist d = FlowSizeDist::benson();
  sim::Random rng{4};
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
  const double mc = sum / n;
  EXPECT_NEAR(d.mean_bytes() / mc, 1.0, 0.1);
}

TEST(FlowSizeDistTest, InternetByteWeightingMatchesPaper) {
  // §2.1: "only 34.7% of bytes were carried by flows smaller than 141KB"
  // even though ~97% of flows are that small.
  FlowSizeDist d = FlowSizeDist::internet();
  const double frac = d.byte_weighted_cdf(141'000);
  EXPECT_NEAR(frac, 0.347, 0.03);
}

TEST(FlowSizeDistTest, DataCenterBytesAreInElephants) {
  // §2.1: "less than 1% of transmitted bytes were in flows smaller than
  // 141KB" in the data-center traces.
  EXPECT_LT(FlowSizeDist::benson().byte_weighted_cdf(141'000), 0.06);
  EXPECT_LT(FlowSizeDist::vl2().byte_weighted_cdf(141'000), 0.06);
}

TEST(FlowSizeDistTest, ByteWeightedCdfIsMonotone) {
  FlowSizeDist d = FlowSizeDist::vl2();
  double prev = 0.0;
  for (double b = 300; b < 2e9; b *= 2) {
    const double f = d.byte_weighted_cdf(b);
    EXPECT_GE(f, prev - 1e-12);
    EXPECT_LE(f, 1.0 + 1e-12);
    prev = f;
  }
  EXPECT_NEAR(d.byte_weighted_cdf(2e9), 1.0, 1e-9);
}

TEST(FlowSizeDistTest, TruncationCapsSamples) {
  FlowSizeDist d = FlowSizeDist::internet().truncated(1'000'000);
  sim::Random rng{5};
  bool saw_cap = false;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t s = d.sample(rng);
    EXPECT_LE(s, 1'000'000u);
    if (s == 1'000'000u) saw_cap = true;
  }
  EXPECT_TRUE(saw_cap);  // the truncated mass concentrates at the cap
}

TEST(FlowSizeDistTest, TruncationAboveSupportIsIdentity) {
  FlowSizeDist d = FlowSizeDist::internet();
  FlowSizeDist t = d.truncated(static_cast<std::uint64_t>(d.max_bytes()) * 2);
  EXPECT_EQ(t.points().size(), d.points().size());
}

TEST(FlowSizeDistTest, TruncationReducesMean) {
  FlowSizeDist d = FlowSizeDist::internet();
  EXPECT_LT(d.truncated(1'000'000).mean_bytes(), d.mean_bytes());
}

}  // namespace
}  // namespace halfback::workload
