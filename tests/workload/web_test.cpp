#include "workload/web.h"

#include <gtest/gtest.h>

namespace halfback::workload {
namespace {

using namespace halfback::sim::literals;

WebsiteCatalog make_catalog(std::uint64_t seed = 1) {
  return WebsiteCatalog{WebCatalogConfig{}, sim::Random{seed}};
}

TEST(WebCatalogTest, GeneratesRequestedSiteCount) {
  WebsiteCatalog catalog = make_catalog();
  EXPECT_EQ(catalog.size(), 100u);
}

TEST(WebCatalogTest, PagesRespectConfigBounds) {
  WebCatalogConfig config;
  WebsiteCatalog catalog{config, sim::Random{2}};
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const WebPage& page = catalog.page(i);
    EXPECT_GE(page.object_bytes.size(),
              static_cast<std::size_t>(config.objects_min));
    EXPECT_LE(page.object_bytes.size(),
              static_cast<std::size_t>(config.objects_max));
    for (std::uint64_t b : page.object_bytes) {
      EXPECT_GE(b, config.object_bytes_min);
      EXPECT_LE(b, config.object_bytes_max);
    }
  }
}

TEST(WebCatalogTest, PagesVaryInWeight) {
  WebsiteCatalog catalog = make_catalog(3);
  std::uint64_t min_bytes = UINT64_MAX, max_bytes = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    min_bytes = std::min(min_bytes, catalog.page(i).total_bytes());
    max_bytes = std::max(max_bytes, catalog.page(i).total_bytes());
  }
  EXPECT_GT(max_bytes, min_bytes * 3);  // real page weights are dispersed
}

TEST(WebCatalogTest, MeanPageBytesIsPositiveAndPlausible) {
  WebsiteCatalog catalog = make_catalog(4);
  // Typical 2015 front pages are a few hundred KB to a few MB.
  EXPECT_GT(catalog.mean_page_bytes(), 100e3);
  EXPECT_LT(catalog.mean_page_bytes(), 5e6);
}

TEST(WebCatalogTest, DeterministicFromSeed) {
  WebsiteCatalog a = make_catalog(5);
  WebsiteCatalog b = make_catalog(5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.page(i).object_bytes, b.page(i).object_bytes);
  }
}

TEST(WebScheduleTest, RequestsWithinDuration) {
  WebsiteCatalog catalog = make_catalog(6);
  sim::Random rng{7};
  auto schedule = make_web_schedule(catalog, 0.3,
                                    sim::DataRate::megabits_per_second(15), 60_s, rng);
  ASSERT_FALSE(schedule.empty());
  for (const WebRequest& r : schedule) {
    EXPECT_LT(r.at, 60_s);
    EXPECT_LT(r.page_index, catalog.size());
  }
}

TEST(WebScheduleTest, LoadScalesWithUtilization) {
  WebsiteCatalog catalog = make_catalog(8);
  sim::Random rng1{9};
  sim::Random rng2{9};
  auto lo = make_web_schedule(catalog, 0.1, sim::DataRate::megabits_per_second(15),
                              600_s, rng1);
  auto hi = make_web_schedule(catalog, 0.5, sim::DataRate::megabits_per_second(15),
                              600_s, rng2);
  EXPECT_NEAR(static_cast<double>(hi.size()) / static_cast<double>(lo.size()), 5.0,
              1.5);
}

}  // namespace
}  // namespace halfback::workload
