#!/usr/bin/env python3
"""Schema check for the telemetry exporters' Chrome trace and run manifest.

Usage: check_chrome_trace.py TRACE.json [MANIFEST.json]

Validates the structural contract documented in docs/telemetry.md:
  - the trace is a JSON object with a traceEvents array;
  - every event carries ph/pid/tid/name with the types Perfetto expects;
  - duration events (ph "X") have non-negative ts/dur;
  - there is at least one per-flow phase span, and the phase names come
    from the FlowPhase catalog (halfback runs must show "pacing");
  - nested span events (ph "B"/"E", the causal span log on pid 3) pair up
    per (pid, tid): every E matches the innermost open B by name, never
    ends before it begins, and no B is left open — which together prove
    each child span is contained in its parent's interval;
  - span names on pid 3 come from the SpanKind catalog, and every span
    B event carries its args.span id;
  - the manifest (if given) carries the provenance fields with 0x-prefixed
    16-digit hashes.

Exits nonzero with a message on the first violation, so CI fails loudly.
"""

import json
import sys

FLOW_PHASES = {"handshake", "pacing", "transfer", "ropr", "fallback", "done"}
SPAN_KINDS = {"flow", "handshake", "pacing", "blast", "ropr_repair",
              "fallback", "rto_recovery"}


def fail(message):
    print(f"check_chrome_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        trace = json.load(f)
    if not isinstance(trace, dict):
        fail(f"{path}: top level must be an object")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")

    phase_spans = 0
    flow_phase_names = set()
    nested_pairs = 0
    open_stacks = {}  # (pid, tid) -> [(name, ts), ...]
    last_ts = {}      # (pid, tid) -> last B/E timestamp seen
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        for key, kind in (("ph", str), ("pid", int), ("tid", int),
                          ("name", str)):
            if not isinstance(ev.get(key), kind):
                fail(f"{where}: missing or mistyped {key!r}: {ev}")
        ph = ev["ph"]
        if ph not in ("M", "X", "i", "B", "E"):
            fail(f"{where}: unexpected ph {ph!r}")
        if ph in ("X", "i", "B", "E"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(f"{where}: bad ts: {ev}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: bad dur: {ev}")
            phase_spans += 1
            if ev["pid"] == 1:  # pid 1 = flow tapes
                if ev["name"] not in FLOW_PHASES:
                    fail(f"{where}: unknown flow phase {ev['name']!r}")
                flow_phase_names.add(ev["name"])
        if ph in ("B", "E"):
            if ev["pid"] == 3 and ev["name"] not in SPAN_KINDS:
                fail(f"{where}: unknown span kind {ev['name']!r}")
            key = (ev["pid"], ev["tid"])
            # Timestamps must not go backwards within a thread: together
            # with the stack discipline below this proves every child
            # interval is contained in its parent's.
            if ev["ts"] < last_ts.get(key, 0):
                fail(f"{where}: B/E ts goes backwards on (pid {key[0]}, "
                     f"tid {key[1]}): {ev}")
            last_ts[key] = ev["ts"]
            stack = open_stacks.setdefault(key, [])
            if ph == "B":
                if ev["pid"] == 3:
                    args = ev.get("args")
                    if not isinstance(args, dict) or \
                            not isinstance(args.get("span"), int):
                        fail(f"{where}: span B event without args.span: {ev}")
                stack.append((ev["name"], ev["ts"]))
            else:
                if not stack:
                    fail(f"{where}: E with no open B on "
                         f"(pid {ev['pid']}, tid {ev['tid']}): {ev}")
                name, begin_ts = stack.pop()
                if name != ev["name"]:
                    fail(f"{where}: E {ev['name']!r} does not match "
                         f"innermost open B {name!r} — span events must "
                         f"nest")
                if ev["ts"] < begin_ts:
                    fail(f"{where}: E at {ev['ts']} before its B at "
                         f"{begin_ts}")
                nested_pairs += 1

    for (pid, tid), stack in open_stacks.items():
        if stack:
            fail(f"{path}: (pid {pid}, tid {tid}) ends with unclosed B "
                 f"events: {[name for name, _ in stack]}")
    if phase_spans == 0:
        fail(f"{path}: no phase spans (ph 'X') at all")
    if "pacing" not in flow_phase_names:
        fail(f"{path}: no 'pacing' flow phase span — halfback cells must "
             f"show the paced start (saw: {sorted(flow_phase_names)})")
    print(f"check_chrome_trace: {path}: OK "
          f"({len(events)} events, {phase_spans} phase spans, "
          f"{nested_pairs} nested span pairs, "
          f"flow phases: {sorted(flow_phase_names)})")


def check_manifest(path):
    with open(path) as f:
        manifest = json.load(f)
    for key, kind in (("experiment", str), ("scheme", str), ("seed", int),
                      ("config_digest", str), ("trace_hash", str),
                      ("events_dispatched", int),
                      ("wall_time_seconds", (int, float))):
        if not isinstance(manifest.get(key), kind):
            fail(f"{path}: missing or mistyped {key!r}")
    for key in ("config_digest", "trace_hash"):
        value = manifest[key]
        if (len(value) != 18 or not value.startswith("0x")
                or value.strip("0123456789abcdefx")):
            fail(f"{path}: {key} is not an 0x-prefixed 16-digit hash: "
                 f"{value!r}")
    if manifest["events_dispatched"] <= 0:
        fail(f"{path}: events_dispatched must be positive")
    print(f"check_chrome_trace: {path}: OK "
          f"(experiment {manifest['experiment']!r}, "
          f"scheme {manifest['scheme']!r}, "
          f"trace_hash {manifest['trace_hash']})")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    check_trace(argv[1])
    if len(argv) == 3:
        check_manifest(argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
