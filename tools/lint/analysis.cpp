#include "analysis.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace halfback::lint {

bool ShardAllowlist::parse(const std::string& text, ShardAllowlist& out,
                           std::string& error) {
  std::istringstream in{text};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields{line};
    ShardAllowEntry entry;
    fields >> entry.qualified >> entry.path;
    if (entry.qualified.empty() || entry.path.empty()) {
      error = "shard allowlist line " + std::to_string(line_no) +
              ": expected '<qualified-name> <path> <justification>', got: " +
              line;
      return false;
    }
    std::getline(fields, entry.justification);
    const std::size_t start = entry.justification.find_first_not_of(" \t");
    entry.justification = start == std::string::npos
                              ? std::string{}
                              : entry.justification.substr(start);
    entry.source_line = line_no;
    out.entries.push_back(std::move(entry));
  }
  return true;
}

bool SeamInventory::parse(const std::string& text, SeamInventory& out,
                          std::string& error) {
  std::istringstream in{text};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields{line};
    SeamEntry entry;
    fields >> entry.caller >> entry.callee >> entry.path;
    if (entry.caller.empty() || entry.callee.empty() || entry.path.empty()) {
      error = "seam inventory line " + std::to_string(line_no) +
              ": expected '<caller-qualified> <callee> <path> "
              "<justification>', got: " +
              line;
      return false;
    }
    std::getline(fields, entry.justification);
    const std::size_t start = entry.justification.find_first_not_of(" \t");
    entry.justification = start == std::string::npos
                              ? std::string{}
                              : entry.justification.substr(start);
    entry.source_line = line_no;
    out.entries.push_back(std::move(entry));
  }
  return true;
}

std::size_t SeamInventory::find(std::string_view caller,
                                std::string_view callee,
                                std::string_view path) const {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].caller == caller && entries[i].callee == callee &&
        entries[i].path == path) {
      return i;
    }
  }
  return entries.size();
}

void ModelRule::report(const ProjectModel& model, std::size_t file, int line,
                       std::string message, std::vector<Finding>& out) const {
  const SourceFile& source = model.file(file);
  const std::string_view tag = suppression_tag();
  if (!tag.empty() && source.suppressed(line, tag)) return;
  out.push_back({std::string{id()}, source.path(), line, std::move(message)});
}

std::vector<std::unique_ptr<ModelRule>> all_model_rules(AnalyzeInputs inputs) {
  std::vector<std::unique_ptr<ModelRule>> rules;
  rules.push_back(make_layering_rule());
  rules.push_back(make_hot_path_reach_rule(inputs.seams));
  rules.push_back(make_shard_safety_rule(std::move(inputs.shard_allowlist)));
  rules.push_back(make_rng_taint_rule());
  rules.push_back(make_effects_rule(std::move(inputs.seams)));
  rules.push_back(make_sim_escape_rule(std::move(inputs.escape_allowlist)));
  return rules;
}

std::vector<Finding> analyze_model(const ProjectModel& model,
                                   AnalyzeInputs inputs,
                                   std::string_view only_rule) {
  std::vector<Finding> findings;
  for (const auto& rule : all_model_rules(std::move(inputs))) {
    if (!only_rule.empty() && rule->id() != only_rule) continue;
    std::vector<Finding> rule_findings;
    rule->check(model, rule_findings);
    std::sort(rule_findings.begin(), rule_findings.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.path, a.line, a.message) <
                       std::tie(b.path, b.line, b.message);
              });
    findings.insert(findings.end(),
                    std::make_move_iterator(rule_findings.begin()),
                    std::make_move_iterator(rule_findings.end()));
  }
  return findings;
}

namespace {

std::string read_text(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"cannot read " + path.string()};
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

ShardAllowlist load_allowlist(const std::filesystem::path& path) {
  ShardAllowlist allowlist;
  if (std::filesystem::exists(path)) {
    std::string error;
    if (!ShardAllowlist::parse(read_text(path), allowlist, error)) {
      throw std::runtime_error{error};
    }
  }
  return allowlist;
}

}  // namespace

AnalyzeInputs load_analyze_inputs(const std::filesystem::path& root) {
  AnalyzeInputs inputs;
  const std::filesystem::path lint = root / "tools" / "lint";
  inputs.shard_allowlist = load_allowlist(lint / "shard_allowlist.txt");
  inputs.escape_allowlist = load_allowlist(lint / "escape_allowlist.txt");
  const std::filesystem::path seams = lint / "hot_seams.txt";
  if (std::filesystem::exists(seams)) {
    std::string error;
    if (!SeamInventory::parse(read_text(seams), inputs.seams, error)) {
      throw std::runtime_error{error};
    }
  }
  return inputs;
}

std::vector<Finding> analyze_tree(const std::filesystem::path& root,
                                  std::string_view only_rule) {
  AnalyzeInputs inputs = load_analyze_inputs(root);
  const ProjectModel model = ProjectModel::build(root);
  return analyze_model(model, std::move(inputs), only_rule);
}

}  // namespace halfback::lint
