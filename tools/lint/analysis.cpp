#include "analysis.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace halfback::lint {

bool ShardAllowlist::parse(const std::string& text, ShardAllowlist& out,
                           std::string& error) {
  std::istringstream in{text};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields{line};
    ShardAllowEntry entry;
    fields >> entry.qualified >> entry.path;
    if (entry.qualified.empty() || entry.path.empty()) {
      error = "shard allowlist line " + std::to_string(line_no) +
              ": expected '<qualified-name> <path> <justification>', got: " +
              line;
      return false;
    }
    std::getline(fields, entry.justification);
    const std::size_t start = entry.justification.find_first_not_of(" \t");
    entry.justification = start == std::string::npos
                              ? std::string{}
                              : entry.justification.substr(start);
    entry.source_line = line_no;
    out.entries.push_back(std::move(entry));
  }
  return true;
}

void ModelRule::report(const ProjectModel& model, std::size_t file, int line,
                       std::string message, std::vector<Finding>& out) const {
  const SourceFile& source = model.file(file);
  const std::string_view tag = suppression_tag();
  if (!tag.empty() && source.suppressed(line, tag)) return;
  out.push_back({std::string{id()}, source.path(), line, std::move(message)});
}

std::vector<std::unique_ptr<ModelRule>> all_model_rules(
    ShardAllowlist allowlist) {
  std::vector<std::unique_ptr<ModelRule>> rules;
  rules.push_back(make_layering_rule());
  rules.push_back(make_hot_path_reach_rule());
  rules.push_back(make_shard_safety_rule(std::move(allowlist)));
  rules.push_back(make_rng_taint_rule());
  return rules;
}

std::vector<Finding> analyze_model(const ProjectModel& model,
                                   ShardAllowlist allowlist,
                                   std::string_view only_rule) {
  std::vector<Finding> findings;
  for (const auto& rule : all_model_rules(std::move(allowlist))) {
    if (!only_rule.empty() && rule->id() != only_rule) continue;
    std::vector<Finding> rule_findings;
    rule->check(model, rule_findings);
    std::sort(rule_findings.begin(), rule_findings.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.path, a.line, a.message) <
                       std::tie(b.path, b.line, b.message);
              });
    findings.insert(findings.end(),
                    std::make_move_iterator(rule_findings.begin()),
                    std::make_move_iterator(rule_findings.end()));
  }
  return findings;
}

std::vector<Finding> analyze_tree(const std::filesystem::path& root,
                                  std::string_view only_rule) {
  ShardAllowlist allowlist;
  const std::filesystem::path allowlist_path =
      root / "tools" / "lint" / "shard_allowlist.txt";
  if (std::filesystem::exists(allowlist_path)) {
    std::ifstream in{allowlist_path, std::ios::binary};
    if (!in) {
      throw std::runtime_error{"cannot read " + allowlist_path.string()};
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!ShardAllowlist::parse(std::move(text).str(), allowlist, error)) {
      throw std::runtime_error{error};
    }
  }
  const ProjectModel model = ProjectModel::build(root);
  return analyze_model(model, std::move(allowlist), only_rule);
}

}  // namespace halfback::lint
