// Cross-TU rule framework for halfback-analyze.
//
// ModelRule is the whole-program counterpart of Rule (rules.h): instead of
// one SourceFile it sees the ProjectModel, so a rule can follow an include
// edge or a call chain across translation units. Findings, suppression
// comments ("// lint: <tag>(reason)" on the line or the line above) and the
// baseline format are shared with halfback-lint so CI and editors treat
// both tools' output identically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model.h"
#include "rules.h"

namespace halfback::lint {

/// The shard-safety allowlist: tolerated mutable statics, each with a
/// justification. Parsed from tools/lint/shard_allowlist.txt.
struct ShardAllowEntry {
  std::string qualified;      ///< qualified variable name, e.g. "exp::g_runs"
  std::string path;           ///< repo-relative file the variable lives in
  std::string justification;  ///< required: why this state is shard-safe
  int source_line = 0;        ///< line in the allowlist file (diagnostics)
};

struct ShardAllowlist {
  std::vector<ShardAllowEntry> entries;

  /// Parse allowlist text. Entry lines read
  /// `<qualified-name> <path> <justification...>`; '#' starts a comment.
  /// Returns false (and fills `error`) on a malformed line. A missing
  /// justification is NOT a parse error — the shard_safety rule reports it
  /// as a finding, so an unjustified entry fails the build visibly.
  static bool parse(const std::string& text, ShardAllowlist& out,
                    std::string& error);
};

class ModelRule {
 public:
  virtual ~ModelRule() = default;

  virtual std::string_view id() const = 0;
  virtual std::string_view description() const = 0;

  /// The suppression tag that silences this rule on a line ("" = none).
  virtual std::string_view suppression_tag() const = 0;

  virtual void check(const ProjectModel& model,
                     std::vector<Finding>& out) const = 0;

 protected:
  /// Emit unless the site in model.file(file) carries this rule's tag.
  void report(const ProjectModel& model, std::size_t file, int line,
              std::string message, std::vector<Finding>& out) const;
};

std::unique_ptr<ModelRule> make_layering_rule();
std::unique_ptr<ModelRule> make_hot_path_reach_rule();
std::unique_ptr<ModelRule> make_shard_safety_rule(ShardAllowlist allowlist);
std::unique_ptr<ModelRule> make_rng_taint_rule();

/// All model rules in the order they run and print. The shard-safety rule
/// is constructed around `allowlist`.
std::vector<std::unique_ptr<ModelRule>> all_model_rules(
    ShardAllowlist allowlist = {});

/// Run every model rule (or just `only_rule`, when nonempty). Findings are
/// ordered rule-by-rule, each rule's findings sorted by (path, line).
std::vector<Finding> analyze_model(const ProjectModel& model,
                                   ShardAllowlist allowlist = {},
                                   std::string_view only_rule = {});

/// Build the model for `root` and analyze it. Reads the shard allowlist
/// from root/tools/lint/shard_allowlist.txt when present. Throws
/// std::runtime_error on I/O or allowlist parse errors.
std::vector<Finding> analyze_tree(const std::filesystem::path& root,
                                  std::string_view only_rule = {});

}  // namespace halfback::lint
