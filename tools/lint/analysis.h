// Cross-TU rule framework for halfback-analyze.
//
// ModelRule is the whole-program counterpart of Rule (rules.h): instead of
// one SourceFile it sees the ProjectModel, so a rule can follow an include
// edge or a call chain across translation units. Findings, suppression
// comments ("// lint: <tag>(reason)" on the line or the line above) and the
// baseline format are shared with halfback-lint so CI and editors treat
// both tools' output identically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model.h"
#include "rules.h"

namespace halfback::lint {

/// The shard-safety allowlist: tolerated mutable statics, each with a
/// justification. Parsed from tools/lint/shard_allowlist.txt.
struct ShardAllowEntry {
  std::string qualified;      ///< qualified variable name, e.g. "exp::g_runs"
  std::string path;           ///< repo-relative file the variable lives in
  std::string justification;  ///< required: why this state is shard-safe
  int source_line = 0;        ///< line in the allowlist file (diagnostics)
};

struct ShardAllowlist {
  std::vector<ShardAllowEntry> entries;

  /// Parse allowlist text. Entry lines read
  /// `<qualified-name> <path> <justification...>`; '#' starts a comment.
  /// Returns false (and fills `error`) on a malformed line. A missing
  /// justification is NOT a parse error — the shard_safety rule reports it
  /// as a finding, so an unjustified entry fails the build visibly.
  static bool parse(const std::string& text, ShardAllowlist& out,
                    std::string& error);
};

/// One sanctioned hot-path indirection: a virtual (or otherwise indirect)
/// call the static-dispatch contract tolerates, named by caller, callee
/// and file so the inventory enumerates the complete set of seams.
struct SeamEntry {
  std::string caller;  ///< qualified caller, e.g. "halfback::net::Link::send"
  std::string callee;  ///< unqualified callee name, e.g. "enqueue"
  std::string path;    ///< repo-relative file holding the call site
  std::string justification;  ///< required: why this indirection is allowed
  int source_line = 0;        ///< line in the inventory file (diagnostics)
};

/// The sanctioned-seam inventory, parsed from tools/lint/hot_seams.txt.
/// Consumed by BOTH cross-TU engines: hot_path_reach skips (and usage-
/// tracks) sanctioned virtual calls, and the effect engine stops effect
/// propagation at the same call sites. An entry no seam matches is itself
/// a finding, so the file cannot go stale silently.
struct SeamInventory {
  std::vector<SeamEntry> entries;

  /// Entry lines read `<caller-qualified> <callee> <path> <justification>`;
  /// '#' starts a comment. Malformed lines fail the parse.
  static bool parse(const std::string& text, SeamInventory& out,
                    std::string& error);

  /// Index of the entry sanctioning `caller` -> `callee` in `path`, or
  /// entries.size() when no entry matches.
  std::size_t find(std::string_view caller, std::string_view callee,
                   std::string_view path) const;
};

/// Everything analyze_model needs beyond the tree itself: the allowlists
/// (empty-by-policy for sim_escape) and the sanctioned-seam inventory.
struct AnalyzeInputs {
  ShardAllowlist shard_allowlist;
  ShardAllowlist escape_allowlist;
  SeamInventory seams;
};

class ModelRule {
 public:
  virtual ~ModelRule() = default;

  virtual std::string_view id() const = 0;
  virtual std::string_view description() const = 0;

  /// The suppression tag that silences this rule on a line ("" = none).
  virtual std::string_view suppression_tag() const = 0;

  virtual void check(const ProjectModel& model,
                     std::vector<Finding>& out) const = 0;

 protected:
  /// Emit unless the site in model.file(file) carries this rule's tag.
  void report(const ProjectModel& model, std::size_t file, int line,
              std::string message, std::vector<Finding>& out) const;
};

std::unique_ptr<ModelRule> make_layering_rule();
std::unique_ptr<ModelRule> make_hot_path_reach_rule(SeamInventory seams = {});
std::unique_ptr<ModelRule> make_shard_safety_rule(ShardAllowlist allowlist);
std::unique_ptr<ModelRule> make_rng_taint_rule();
std::unique_ptr<ModelRule> make_effects_rule(SeamInventory seams = {});
std::unique_ptr<ModelRule> make_sim_escape_rule(ShardAllowlist allowlist);

/// All model rules in the order they run and print. The allowlist-backed
/// rules are constructed around the corresponding `inputs` fields; the
/// seam inventory is shared by hot_path_reach and effects.
std::vector<std::unique_ptr<ModelRule>> all_model_rules(
    AnalyzeInputs inputs = {});

/// Run every model rule (or just `only_rule`, when nonempty). Findings are
/// ordered rule-by-rule, each rule's findings sorted by (path, line).
std::vector<Finding> analyze_model(const ProjectModel& model,
                                   AnalyzeInputs inputs = {},
                                   std::string_view only_rule = {});

/// Load the allowlists and seam inventory for `root` from tools/lint/
/// (missing files yield empty inputs). Throws on I/O or parse errors.
AnalyzeInputs load_analyze_inputs(const std::filesystem::path& root);

/// Build the model for `root` and analyze it. Reads the shard and escape
/// allowlists and the seam inventory from root/tools/lint/ when present
/// (shard_allowlist.txt, escape_allowlist.txt, hot_seams.txt). Throws
/// std::runtime_error on I/O or parse errors.
std::vector<Finding> analyze_tree(const std::filesystem::path& root,
                                  std::string_view only_rule = {});

}  // namespace halfback::lint
