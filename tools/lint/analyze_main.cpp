// halfback-analyze: cross-TU semantic analysis over the project model.
//
//   halfback-analyze --root <repo>          analyze the whole tree
//   --baseline <file>          tolerate findings listed in <file>
//   --update-baseline <file>   write current findings to <file> and exit 0
//   --verify-baseline <file>   exit 1 if <file> has entries matching no
//                              finding (the CI drift guard)
//   --rule <id>                run a single rule family
//   --list-rules               print the rule table and exit
//   --dot <file>               also write the layer include graph (Graphviz)
//   --effects <prefix>         print the inferred effect set of every
//                              function whose qualified name starts with
//                              <prefix> and exit (annotation aid)
//
// Exit status: 0 clean, 1 findings (or stale baseline), 2 usage or I/O
// error — same contract as halfback-lint, so CI failures are diagnosable
// from the code alone.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis.h"
#include "baseline.h"
#include "effects.h"

namespace {

using namespace halfback::lint;

struct Options {
  std::filesystem::path root = ".";
  std::string baseline_path;
  std::string update_baseline_path;
  std::string verify_baseline_path;
  std::string only_rule;
  std::string dot_path;
  std::string effects_prefix;
  bool dump_effects = false;
  bool list_rules = false;
};

int usage(std::ostream& out, int code) {
  out << "usage: halfback-analyze --root <repo> [--baseline <file>]\n"
         "                        [--update-baseline <file>] "
         "[--verify-baseline <file>]\n"
         "                        [--rule <id>] [--list-rules] "
         "[--dot <file>]\n"
         "                        [--effects <qualified-name-prefix>]\n";
  return code;
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&](std::string& into) {
      if (i + 1 >= argc) return false;
      into = argv[++i];
      return true;
    };
    std::string root_value;
    if (arg == "--root") {
      if (!value(root_value)) return false;
      opts.root = root_value;
    } else if (arg == "--baseline") {
      if (!value(opts.baseline_path)) return false;
    } else if (arg == "--update-baseline") {
      if (!value(opts.update_baseline_path)) return false;
    } else if (arg == "--verify-baseline") {
      if (!value(opts.verify_baseline_path)) return false;
    } else if (arg == "--rule") {
      if (!value(opts.only_rule)) return false;
    } else if (arg == "--dot") {
      if (!value(opts.dot_path)) return false;
    } else if (arg == "--effects") {
      if (!value(opts.effects_prefix)) return false;
      opts.dump_effects = true;
    } else if (arg == "--list-rules") {
      opts.list_rules = true;
    } else {
      return false;
    }
  }
  return true;
}

bool load_baseline(const std::string& path, Baseline& baseline) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "halfback-analyze: cannot read baseline " << path << "\n";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  if (!baseline.parse(text.str(), error)) {
    std::cerr << "halfback-analyze: " << error << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage(std::cerr, 2);

  if (opts.list_rules) {
    for (const auto& rule : all_model_rules()) {
      std::cout << rule->id() << "\n    " << rule->description();
      if (!rule->suppression_tag().empty()) {
        std::cout << "\n    suppression: // lint: " << rule->suppression_tag()
                  << "(reason)";
      }
      std::cout << "\n";
    }
    return 0;
  }

  Baseline baseline;
  if (!opts.baseline_path.empty() &&
      !load_baseline(opts.baseline_path, baseline)) {
    return 2;
  }
  Baseline verify;
  if (!opts.verify_baseline_path.empty() &&
      !load_baseline(opts.verify_baseline_path, verify)) {
    return 2;
  }

  std::vector<Finding> findings;
  std::string dot;
  try {
    AnalyzeInputs inputs = load_analyze_inputs(opts.root);
    const ProjectModel model = ProjectModel::build(opts.root);
    if (opts.dump_effects) {
      // Annotation aid: inferred effect set per matching function, in
      // symbol-table order (deterministic: directory scan is sorted).
      const EffectAnalysis analysis{model, inputs.seams};
      for (std::size_t i = 0; i < model.functions().size(); ++i) {
        const FunctionDef& fn = model.functions()[i];
        if (!fn.qualified.starts_with(opts.effects_prefix)) continue;
        std::cout << fn.qualified << " [" << analysis.of(i).to_string()
                  << "] " << model.file(fn.file).path() << ":" << fn.line
                  << "\n";
      }
      return 0;
    }
    findings = analyze_model(model, std::move(inputs), opts.only_rule);
    if (!opts.dot_path.empty()) dot = model.layer_graph_dot();
  } catch (const std::exception& e) {
    std::cerr << "halfback-analyze: " << e.what() << "\n";
    return 2;
  }

  if (!opts.dot_path.empty()) {
    std::ofstream out{opts.dot_path};
    if (!out) {
      std::cerr << "halfback-analyze: cannot write " << opts.dot_path << "\n";
      return 2;
    }
    out << dot;
  }

  if (!opts.update_baseline_path.empty()) {
    std::ofstream out{opts.update_baseline_path};
    if (!out) {
      std::cerr << "halfback-analyze: cannot write "
                << opts.update_baseline_path << "\n";
      return 2;
    }
    out << Baseline::render(findings, "halfback-analyze");
    std::cout << "halfback-analyze: wrote " << findings.size()
              << " finding(s) to " << opts.update_baseline_path << "\n";
    return 0;
  }

  if (!opts.verify_baseline_path.empty()) {
    const auto stale = verify.stale_entries(findings);
    if (!stale.empty()) {
      for (const std::string& entry : stale) {
        std::cout << "stale baseline entry: " << entry << "\n";
      }
      std::cout << "halfback-analyze: " << stale.size()
                << " stale baseline entr(ies) in " << opts.verify_baseline_path
                << "\n";
      return 1;
    }
  }

  std::size_t reported = 0;
  for (const Finding& f : findings) {
    if (baseline.contains(f)) continue;
    ++reported;
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (reported == 0) {
    std::cout << "halfback-analyze: clean (" << findings.size()
              << " finding(s) total, " << baseline.size()
              << " baseline entr(ies))\n";
    return 0;
  }
  std::cout << "halfback-analyze: " << reported << " finding(s)\n";
  return 1;
}
