// effects: verify HB_EFFECTS contracts against interprocedural inference.
//
// HB_EFFECTS(...) (src/sim/annotations.h) declares what a function may do
// beyond computing its result — alloc, throw, clock, rng, io, global_mut,
// block. The macro expands to nothing; this rule makes it mean something:
// the effect engine (effects.h) infers every function's set bottom-up over
// the call graph, and each contract is checked in BOTH directions.
//
//   * inferred ⊄ declared — the function does something its contract
//     hides. The finding carries the inferred call chain down to the leaf
//     evidence, so "where did the allocation sneak in" is answered by the
//     message, not a debugging session.
//   * declared ⊅ inferred — the contract claims an effect the body cannot
//     produce. Stale breadth is reported too, so contracts stay exact:
//     a reader can trust both what a contract says and what it omits.
//
// Contracts may sit on declarations or definitions; both are keyed by the
// qualified name, and conflicting duplicates are findings. A contract
// whose function has no modeled body (a pure-virtual interface method, a
// template the tokenizer cannot pair) checks nothing — the rule misses
// rather than invents, like every cross-TU rule here.
//
// This subsumes the hand-rolled checks hot_path_reach once carried alone:
// that rule keeps its wire/pipeline purity contracts, while arbitrary
// functions now opt into machine-checked effect discipline by annotation.
#include <map>
#include <sstream>

#include "analysis.h"
#include "effects.h"

namespace halfback::lint {
namespace {

class EffectsRule final : public ModelRule {
 public:
  explicit EffectsRule(SeamInventory seams) : seams_{std::move(seams)} {}

  std::string_view id() const override { return "effects"; }
  std::string_view description() const override {
    return "every HB_EFFECTS(...) contract must match the inferred effect "
           "set exactly: no undeclared effect may be reachable from the "
           "function, and no declared effect may be uninferable";
  }
  std::string_view suppression_tag() const override { return "effects-ok"; }

  void check(const ProjectModel& model,
             std::vector<Finding>& out) const override {
    const EffectAnalysis analysis{model, seams_};
    const auto& functions = model.functions();

    // Definitions by qualified name: a contract on a header declaration
    // meets its out-of-line body here.
    std::map<std::string, std::vector<std::size_t>, std::less<>> defs;
    for (std::size_t i = 0; i < functions.size(); ++i) {
      defs[functions[i].qualified].push_back(i);
    }

    // Contracts by qualified name; duplicated contracts must agree.
    std::map<std::string, const EffectContract*, std::less<>> canonical;
    for (const EffectContract& contract : model.contracts()) {
      const auto [it, inserted] =
          canonical.emplace(contract.qualified, &contract);
      if (inserted) continue;
      if (declared_set(model, *it->second, nullptr) !=
          declared_set(model, contract, nullptr)) {
        report(model, contract.file, contract.line,
               "conflicting HB_EFFECTS contracts for '" + contract.qualified +
                   "' (first declared at " +
                   model.file(it->second->file).path() + ":" +
                   std::to_string(it->second->line) + ")",
               out);
      }
    }

    for (const auto& [qualified, contract] : canonical) {
      const EffectSet declared = declared_set(model, *contract, &out);
      const auto def_it = defs.find(qualified);
      if (def_it == defs.end()) continue;  // no modeled body to infer from

      // Overload sets share the qualified name; the contract covers the
      // union, and each violating overload is reported at its own body.
      EffectSet inferred_union;
      for (std::size_t def : def_it->second) {
        const EffectSet inferred = analysis.of(def);
        for (int e = 0; e < kEffectCount; ++e) {
          const Effect effect = static_cast<Effect>(e);
          if (inferred.contains(effect)) inferred_union.add(effect);
          if (!inferred.contains(effect) || declared.contains(effect)) {
            continue;
          }
          std::ostringstream msg;
          msg << "effect contract violation: '" << qualified << "' declares {"
              << declared.to_string() << "} but '" << to_string(effect)
              << "' is reachable — " << analysis.witness(def, effect);
          report(model, functions[def].file, functions[def].line,
                 std::move(msg).str(), out);
        }
      }
      for (int e = 0; e < kEffectCount; ++e) {
        const Effect effect = static_cast<Effect>(e);
        if (!declared.contains(effect) || inferred_union.contains(effect)) {
          continue;
        }
        std::ostringstream msg;
        msg << "effect contract too wide: '" << qualified << "' declares '"
            << to_string(effect)
            << "' but no definition can produce it; narrow the contract so "
               "it stays exact";
        report(model, contract->file, contract->line, std::move(msg).str(),
               out);
      }
    }
  }

 private:
  /// Parse a contract's tokens; unknown tokens are findings when `out` is
  /// provided (and ignored in the set either way).
  EffectSet declared_set(const ProjectModel& model,
                         const EffectContract& contract,
                         std::vector<Finding>* out) const {
    EffectSet declared;
    for (const std::string& token : contract.declared) {
      if (const auto effect = effect_from_token(token)) {
        declared.add(*effect);
      } else if (out != nullptr) {
        report(model, contract.file, contract.line,
               "unknown effect token '" + token + "' in HB_EFFECTS for '" +
                   contract.qualified + "' (known: alloc, throw, clock, rng, "
                   "io, global_mut, block)",
               *out);
      }
    }
    return declared;
  }

  SeamInventory seams_;
};

}  // namespace

std::unique_ptr<ModelRule> make_effects_rule(SeamInventory seams) {
  return std::make_unique<EffectsRule>(std::move(seams));
}

}  // namespace halfback::lint
