// hot_path_reach: transitive hot-path purity proofs.
//
// The per-file hot_path_function / noexcept_fire rules (PR 3) check bodies
// they can see; this rule closes the gap the ISSUE calls out — a fire()
// body calling a helper two TUs away that allocates. Roots are every
// `fire()` override defined under src/ (the event-dispatch hot path; that
// set includes the net::Link TX/RX events) plus net::Link::send, the
// per-packet entry point itself. A multi-source BFS over the call graph
// marks everything reachable; any evidence (allocation, throw,
// std::function construction, container growth) in a reached function is a
// finding, reported with the call chain that proves reachability.
//
// Deliberate blind spots, chosen so the model misses rather than invents:
//   * std::function / function-pointer calls are invisible edges (the
//     per-file rules still police the bodies of the callbacks themselves
//     when they live in hot-path files);
//   * src/audit and src/telemetry are not traversed — the observation
//     layer is preallocated-by-design and compiled out of measurement
//     builds, so charging its bodies to the packet path would be noise;
//   * only functions defined under src/ are traversed, so a name collision
//     with a test helper cannot drag tests/ code into the proof.
#include <map>
#include <sstream>

#include "analysis.h"

namespace halfback::lint {
namespace {

constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

bool traversable(const ProjectModel& model, const FunctionDef& fn) {
  const std::string& path = model.file(fn.file).path();
  if (!path.starts_with("src/")) return false;
  if (path.starts_with("src/audit/") || path.starts_with("src/telemetry/")) {
    return false;
  }
  return true;
}

class HotPathReachRule final : public ModelRule {
 public:
  std::string_view id() const override { return "hot_path_reach"; }
  std::string_view description() const override {
    return "no function transitively reachable from fire() overrides or "
           "Link::send may allocate, throw, or construct std::function";
  }
  std::string_view suppression_tag() const override { return "hot-ok"; }

  void check(const ProjectModel& model,
             std::vector<Finding>& out) const override {
    const auto& functions = model.functions();
    const auto& edges = model.call_edges();
    std::vector<std::size_t> parent(functions.size(), kNoParent);
    std::vector<bool> reached(functions.size(), false);
    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < functions.size(); ++i) {
      const FunctionDef& fn = functions[i];
      if (!traversable(model, fn)) continue;
      const bool is_root =
          fn.is_fire_override ||
          (fn.name == "send" && fn.class_name == "Link" &&
           model.file(fn.file).path().starts_with("src/net/"));
      if (is_root) {
        reached[i] = true;
        queue.push_back(i);
      }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t node = queue[head];
      for (std::size_t next : edges[node]) {
        if (reached[next] || !traversable(model, functions[next])) continue;
        reached[next] = true;
        parent[next] = node;
        queue.push_back(next);
      }
    }
    for (std::size_t i : queue) {
      const FunctionDef& fn = functions[i];
      for (const Evidence& ev : fn.evidence) {
        std::ostringstream msg;
        msg << "hot path: '" << fn.qualified << "' (" << chain(functions, parent, i)
            << ") must not contain " << to_string(ev.kind) << " ('"
            << ev.detail << "')";
        report(model, fn.file, ev.line, std::move(msg).str(), out);
      }
    }
  }

 private:
  static std::string chain(const std::vector<FunctionDef>& functions,
                           const std::vector<std::size_t>& parent,
                           std::size_t node) {
    std::vector<std::size_t> path{node};
    while (parent[path.back()] != kNoParent) path.push_back(parent[path.back()]);
    if (path.size() == 1) return "a hot-path root";
    std::ostringstream out;
    out << "reached via ";
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (it != path.rbegin()) out << " -> ";
      out << functions[*it].qualified;
    }
    return std::move(out).str();
  }
};

}  // namespace

std::unique_ptr<ModelRule> make_hot_path_reach_rule() {
  return std::make_unique<HotPathReachRule>();
}

}  // namespace halfback::lint
