// hot_path_reach: transitive hot-path purity proofs.
//
// The per-file hot_path_function / noexcept_fire rules (PR 3) check bodies
// they can see; this rule closes the gap the ISSUE calls out — a fire()
// body calling a helper two TUs away that allocates. Two root sets, two
// contracts:
//
//   * Wire roots — every `fire()` override defined under src/ (the
//     event-dispatch hot path; that set includes the net::Link TX/RX
//     events) plus net::Link::send, the per-packet entry point itself.
//     Reached functions may not allocate, throw, construct std::function,
//     or grow containers: the event loop's purity contract.
//   * Pipeline roots — every on_packet / on_rto defined under
//     src/transport/ or src/schemes/: the hot entries Sender<Policy>
//     instantiates. Reached functions enforce the static-dispatch
//     contract only — no std::function construction and no virtual
//     dispatch. (Amortized container growth and programming-error throws
//     are legitimate inside the transport state machines; the wire
//     contract above stays scoped to the event loop.)
//
// A multi-source BFS per root set marks everything reachable; findings
// carry the call chain that proves reachability.
//
// Both root sets are checked for virtual dispatch: a member call
// (obj.f() / ptr->f()) whose name matches any member declared virtual
// under src/ is reported. This is the one check that is deliberately
// conservative in the *inventing* direction — the tokenizer cannot see
// static types, so a member call to a non-virtual method that shares its
// name with some virtual (or one the compiler devirtualizes) trips it
// too. The static-pipeline contract is the point: every indirect call
// surviving on the packet path must appear in tools/lint/hot_seams.txt
// naming why that seam is allowed, so one inventory enumerates the
// complete set of sanctioned indirections (the factory's one
// SenderBase::on_packet dispatch, the polymorphic queue discipline, the
// fault hook) — and the effect engine (effects.h) honors the same file,
// cutting effect propagation at exactly the sanctioned call sites. An
// entry no call site needs anymore is itself a finding.
//
// Deliberate blind spots, chosen so the model misses rather than invents:
//   * std::function / function-pointer calls are invisible edges (the
//     per-file rules still police the bodies of the callbacks themselves
//     when they live in hot-path files);
//   * src/audit and src/telemetry are not traversed — the observation
//     layer is preallocated-by-design and compiled out of measurement
//     builds, so charging its bodies to the packet path would be noise;
//   * only functions defined under src/ are traversed, so a name collision
//     with a test helper cannot drag tests/ code into the proof.
#include <map>
#include <set>
#include <sstream>

#include "analysis.h"

namespace halfback::lint {
namespace {

constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

bool traversable_path(const std::string& path) {
  if (!path.starts_with("src/")) return false;
  if (path.starts_with("src/audit/") || path.starts_with("src/telemetry/")) {
    return false;
  }
  return true;
}

bool traversable(const ProjectModel& model, const FunctionDef& fn) {
  return traversable_path(model.file(fn.file).path());
}

bool is_wire_root(const ProjectModel& model, const FunctionDef& fn) {
  return fn.is_fire_override ||
         (fn.name == "send" && fn.class_name == "Link" &&
          model.file(fn.file).path().starts_with("src/net/"));
}

bool is_pipeline_root(const ProjectModel& model, const FunctionDef& fn) {
  if (fn.name != "on_packet" && fn.name != "on_rto") return false;
  const std::string& path = model.file(fn.file).path();
  return path.starts_with("src/transport/") || path.starts_with("src/schemes/");
}

/// One BFS: reachability + parent pointers for the proof chains.
struct Reach {
  std::vector<bool> reached;
  std::vector<std::size_t> parent;
  std::vector<std::size_t> queue;  ///< BFS order, roots first

  Reach(const ProjectModel& model,
        bool (*root)(const ProjectModel&, const FunctionDef&)) {
    const auto& functions = model.functions();
    const auto& edges = model.call_edges();
    reached.assign(functions.size(), false);
    parent.assign(functions.size(), kNoParent);
    for (std::size_t i = 0; i < functions.size(); ++i) {
      if (!traversable(model, functions[i])) continue;
      if (!root(model, functions[i])) continue;
      reached[i] = true;
      queue.push_back(i);
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t node = queue[head];
      for (std::size_t next : edges[node]) {
        if (reached[next] || !traversable(model, functions[next])) continue;
        reached[next] = true;
        parent[next] = node;
        queue.push_back(next);
      }
    }
  }
};

class HotPathReachRule final : public ModelRule {
 public:
  explicit HotPathReachRule(SeamInventory seams) : seams_{std::move(seams)} {}

  std::string_view id() const override { return "hot_path_reach"; }
  std::string_view description() const override {
    return "functions reachable from fire() overrides or Link::send may not "
           "allocate, throw, or type-erase; functions reachable from the "
           "sender pipeline's on_packet/on_rto entries may not construct "
           "std::function or dispatch through an unsanctioned virtual call";
  }
  std::string_view suppression_tag() const override { return "hot-ok"; }

  void check(const ProjectModel& model,
             std::vector<Finding>& out) const override {
    const auto& functions = model.functions();
    // Names that may dispatch virtually: every member declared virtual in
    // a traversable file (audit/telemetry virtuals are observation-layer
    // seams, compiled out of measurement builds).
    std::set<std::string_view> virtual_names;
    for (const VirtualMethod& vm : model.virtual_methods()) {
      if (traversable_path(model.file(vm.file).path())) {
        virtual_names.insert(vm.name);
      }
    }

    const Reach wire{model, is_wire_root};
    std::set<std::size_t> seams_used;
    for (std::size_t i : wire.queue) {
      const FunctionDef& fn = functions[i];
      for (const Evidence& ev : fn.evidence) {
        // The effect kinds (clock/rng/io/...) belong to the effects rule;
        // this contract stays exactly the original five.
        if (!is_hot_path_evidence(ev.kind)) continue;
        std::ostringstream msg;
        msg << "hot path: '" << fn.qualified << "' ("
            << chain(functions, wire.parent, i) << ") must not contain "
            << to_string(ev.kind) << " ('" << ev.detail << "')";
        report(model, fn.file, ev.line, std::move(msg).str(), out);
      }
      report_virtual_calls(model, functions, wire.parent, i, virtual_names,
                           seams_used, out);
    }

    const Reach pipeline{model, is_pipeline_root};
    for (std::size_t i : pipeline.queue) {
      if (wire.reached[i]) continue;  // already held to the stricter contract
      const FunctionDef& fn = functions[i];
      for (const Evidence& ev : fn.evidence) {
        if (ev.kind != EvidenceKind::function_construct) continue;
        std::ostringstream msg;
        msg << "sender pipeline hot path: '" << fn.qualified << "' ("
            << chain(functions, pipeline.parent, i) << ") must not contain "
            << to_string(ev.kind) << " ('" << ev.detail << "')";
        report(model, fn.file, ev.line, std::move(msg).str(), out);
      }
      report_virtual_calls(model, functions, pipeline.parent, i, virtual_names,
                           seams_used, out);
    }

    // A seam entry no reachable call site needed is stale: the seam was
    // devirtualized, moved, or renamed, and keeping the entry would
    // silently sanction a future indirection that reuses the names.
    for (std::size_t s = 0; s < seams_.entries.size(); ++s) {
      if (seams_used.contains(s)) continue;
      const SeamEntry& entry = seams_.entries[s];
      out.push_back({std::string{id()}, "tools/lint/hot_seams.txt",
                     entry.source_line,
                     "stale seam entry '" + entry.caller + "' -> '" +
                         entry.callee + "' (" + entry.path +
                         "): no hot-path call site matches it"});
    }
  }

 private:
  void report_virtual_calls(const ProjectModel& model,
                            const std::vector<FunctionDef>& functions,
                            const std::vector<std::size_t>& parent,
                            std::size_t i,
                            const std::set<std::string_view>& virtual_names,
                            std::set<std::size_t>& seams_used,
                            std::vector<Finding>& out) const {
    const FunctionDef& fn = functions[i];
    const std::string& path = model.file(fn.file).path();
    for (const CallSite& call : fn.calls) {
      if (call.qualifier != "<member>") continue;
      if (!virtual_names.contains(call.callee)) continue;
      const std::size_t seam = seams_.find(fn.qualified, call.callee, path);
      if (seam < seams_.entries.size()) {
        // Sanctioned in tools/lint/hot_seams.txt — the one inventory both
        // this rule and the effect engine honor.
        seams_used.insert(seam);
        continue;
      }
      std::ostringstream msg;
      msg << "hot path: '" << fn.qualified << "' ("
          << chain(functions, parent, i)
          << ") must not dispatch through a virtual call ('" << call.callee
          << "' is declared virtual; devirtualize or add the sanctioned "
             "seam to tools/lint/hot_seams.txt)";
      report(model, fn.file, call.line, std::move(msg).str(), out);
    }
  }

  SeamInventory seams_;

  static std::string chain(const std::vector<FunctionDef>& functions,
                           const std::vector<std::size_t>& parent,
                           std::size_t node) {
    std::vector<std::size_t> path{node};
    while (parent[path.back()] != kNoParent) path.push_back(parent[path.back()]);
    if (path.size() == 1) return "a hot-path root";
    std::ostringstream out;
    out << "reached via ";
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (it != path.rbegin()) out << " -> ";
      out << functions[*it].qualified;
    }
    return std::move(out).str();
  }
};

}  // namespace

std::unique_ptr<ModelRule> make_hot_path_reach_rule(SeamInventory seams) {
  return std::make_unique<HotPathReachRule>(std::move(seams));
}

}  // namespace halfback::lint
