// layering: enforce the layer DAG over the include graph.
//
// The architecture is a strict layering (DESIGN.md):
//
//   sim <- net <- {transport, schemes} <- {netfault} <- exp <- {bench, tests}
//
// with three sideline layers: workload and stats sit directly on sim;
// telemetry sits on stats/netfault/net/sim; audit sits on transport/net/sim.
// Lower layers must not include upward. The one sanctioned exception is the
// observability interface surface (ProjectModel::is_interface_header): the
// audit hook and the telemetry probe headers are designed to be includable
// from any src/ layer and themselves depend only on sim/stats, so the
// file-level graph stays acyclic — which this rule also proves, by
// rejecting any include cycle regardless of layers.
#include <map>
#include <set>
#include <sstream>

#include "analysis.h"

namespace halfback::lint {
namespace {

/// allowed_targets(L): the layers L's files may include. Top-of-stack
/// consumers (exp, bench, tests, examples, tools) may include anything —
/// they are the wiring layers the DAG exists to protect everything below
/// from.
const std::set<std::string>* allowed_targets(const std::string& layer) {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"sim", {"sim"}},
      {"workload", {"workload", "sim"}},
      {"stats", {"stats", "sim"}},
      {"net", {"net", "sim"}},
      {"transport", {"transport", "net", "sim"}},
      {"schemes", {"schemes", "transport", "net", "sim"}},
      {"netfault", {"netfault", "net", "sim"}},
      {"audit", {"audit", "transport", "net", "sim"}},
      {"telemetry", {"telemetry", "stats", "netfault", "net", "sim"}},
  };
  const auto it = kAllowed.find(layer);
  return it == kAllowed.end() ? nullptr : &it->second;
}

class LayeringRule final : public ModelRule {
 public:
  std::string_view id() const override { return "layering"; }
  std::string_view description() const override {
    return "include edges must follow the layer DAG and contain no cycles";
  }
  std::string_view suppression_tag() const override { return "layer-ok"; }

  void check(const ProjectModel& model,
             std::vector<Finding>& out) const override {
    check_edges(model, out);
    check_cycles(model, out);
  }

 private:
  void check_edges(const ProjectModel& model,
                   std::vector<Finding>& out) const {
    for (const IncludeEdge& e : model.includes()) {
      const std::string& from_path = model.file(e.from).path();
      const std::string& to_path = model.file(e.to).path();
      const std::string from = ProjectModel::layer_of(from_path);
      const std::string to = ProjectModel::layer_of(to_path);
      if (from.empty() || to.empty()) continue;
      const std::set<std::string>* allowed = allowed_targets(from);
      if (allowed == nullptr) continue;  // exp, bench, tests, examples, tools
      if (allowed->contains(to)) continue;
      if (ProjectModel::is_interface_header(to_path)) continue;
      report(model, e.from, e.line,
             "layer '" + from + "' may not include " + to_path + " (layer '" +
                 to + "' is not below it in the layer DAG)",
             out);
    }
  }

  /// DFS over the file-level include graph; a back edge to a file on the
  /// current stack is a cycle. Each cycle is reported once, at the include
  /// that closes it, with the full path spelled out.
  void check_cycles(const ProjectModel& model,
                    std::vector<Finding>& out) const {
    const std::size_t n = model.files().size();
    std::vector<std::vector<const IncludeEdge*>> adj(n);
    for (const IncludeEdge& e : model.includes()) {
      adj[e.from].push_back(&e);
    }
    enum class Color { white, gray, black };
    std::vector<Color> color(n, Color::white);
    std::vector<std::size_t> stack;
    // Iterative DFS: (node, next child index) frames keep the gray stack
    // explicit so the cycle path can be read straight off it.
    for (std::size_t root = 0; root < n; ++root) {
      if (color[root] != Color::white) continue;
      std::vector<std::pair<std::size_t, std::size_t>> frames{{root, 0}};
      color[root] = Color::gray;
      stack.push_back(root);
      while (!frames.empty()) {
        auto& [node, child] = frames.back();
        if (child >= adj[node].size()) {
          color[node] = Color::black;
          stack.pop_back();
          frames.pop_back();
          continue;
        }
        const IncludeEdge* edge = adj[node][child++];
        if (color[edge->to] == Color::gray) {
          report_cycle(model, *edge, stack, out);
          continue;
        }
        if (color[edge->to] == Color::white) {
          color[edge->to] = Color::gray;
          stack.push_back(edge->to);
          frames.emplace_back(edge->to, 0);
        }
      }
    }
  }

  void report_cycle(const ProjectModel& model, const IncludeEdge& closing,
                    const std::vector<std::size_t>& stack,
                    std::vector<Finding>& out) const {
    std::ostringstream msg;
    msg << "include cycle: ";
    bool in_cycle = false;
    for (std::size_t node : stack) {
      if (node == closing.to) in_cycle = true;
      if (in_cycle) msg << model.file(node).path() << " -> ";
    }
    msg << model.file(closing.to).path();
    report(model, closing.from, closing.line, std::move(msg).str(), out);
  }
};

}  // namespace

std::unique_ptr<ModelRule> make_layering_rule() {
  return std::make_unique<LayeringRule>();
}

}  // namespace halfback::lint
