// rng_taint: every RNG must be constructed from seed-derived arguments.
//
// Bit-identical replay (the property every golden trace hash in
// tests/audit/ pins) requires that all randomness flow from the experiment
// seed. The per-file nondeterminism rule bans the ambient sources
// (random_device, time(), rand()); this rule checks the construction side:
// an RNG object (sim::Random or a <random> engine) must be built FROM
// something — and that something must visibly derive from a seed.
//
// The taint heuristic is lexical over the constructor argument tokens:
//   * tainted (ambient):  random_device, time, clock, chrono, getpid,
//     rdtsc, high_resolution_clock — reported even if other args look fine;
//   * clean: a number literal (a fixed seed is deterministic by
//     definition), or an identifier/call mentioning seed / salt / rng /
//     random / fork / engine / gen / key / hash (fork() is how sim::Random
//     derives child streams);
//   * anything else — including a default-constructed engine, which seeds
//     itself from an implementation-defined source — is a finding.
// Member RNGs initialized in ctor-init-lists are resolved through the
// model's member-init table, so `loss_rng_{sim.random().fork(0x11bb)}`
// is checked exactly like a local construction.
#include <algorithm>
#include <array>
#include <cctype>

#include "analysis.h"

namespace halfback::lint {
namespace {

bool contains_ci(std::string_view haystack, std::string_view needle) {
  const auto it = std::search(
      haystack.begin(), haystack.end(), needle.begin(), needle.end(),
      [](char a, char b) {
        return std::tolower(static_cast<unsigned char>(a)) ==
               std::tolower(static_cast<unsigned char>(b));
      });
  return it != haystack.end();
}

bool is_ambient_ident(std::string_view text) {
  static constexpr std::array<std::string_view, 7> kAmbient{
      "random_device", "time",  "clock", "chrono",
      "getpid",        "rdtsc", "high_resolution_clock",
  };
  return std::any_of(kAmbient.begin(), kAmbient.end(),
                     [&](std::string_view a) { return text == a; });
}

bool is_seedish_ident(std::string_view text) {
  static constexpr std::array<std::string_view, 9> kSeedish{
      "seed", "salt", "rng", "random", "fork", "engine", "gen", "key", "hash",
  };
  return std::any_of(kSeedish.begin(), kSeedish.end(), [&](std::string_view s) {
    return contains_ci(text, s);
  });
}

class RngTaintRule final : public ModelRule {
 public:
  std::string_view id() const override { return "rng_taint"; }
  std::string_view description() const override {
    return "RNG objects must be constructed from seed-derived arguments, "
           "not default- or ambient-seeded";
  }
  std::string_view suppression_tag() const override { return "seed-ok"; }

  void check(const ProjectModel& model,
             std::vector<Finding>& out) const override {
    for (const RngConstruction& site : model.rng_sites()) {
      const std::string what = site.type_name.empty()
                                   ? "RNG member '" + site.var_name + "'"
                                   : "'" + site.type_name +
                                         (site.var_name.empty()
                                              ? std::string{"'"}
                                              : " " + site.var_name + "'");
      if (site.default_constructed) {
        report(model, site.file, site.line,
               what + " is default-constructed: its seed is implementation-"
                      "defined, not experiment-derived",
               out);
        continue;
      }
      bool ambient = false;
      bool seedish = false;
      for (const Token& t : site.args) {
        if (t.kind == TokenKind::number) seedish = true;
        if (t.kind != TokenKind::identifier) continue;
        if (is_ambient_ident(t.text)) ambient = true;
        if (is_seedish_ident(t.text)) seedish = true;
      }
      if (ambient) {
        report(model, site.file, site.line,
               what + " is seeded from an ambient source; derive the seed "
                      "from the experiment seed instead",
               out);
      } else if (!seedish) {
        report(model, site.file, site.line,
               what + " is not visibly seed-derived: pass a literal or a "
                      "value named after the seed it derives from "
                      "(seed/salt/fork/...)",
               out);
      }
    }
  }
};

}  // namespace

std::unique_ptr<ModelRule> make_rng_taint_rule() {
  return std::make_unique<RngTaintRule>();
}

}  // namespace halfback::lint
