// shard_safety: inventory mutable state with static storage duration.
//
// The sharded parallel experiment engine (ROADMAP) runs many simulator
// instances in one process. That is only sound if simulator code keeps all
// mutable state behind instance pointers: any non-const namespace-scope
// variable, mutable static data member, or function-local `static` (the
// classic singleton accessor) under src/ is shared across shards and a
// latent cross-shard race / determinism leak. This rule is the
// machine-checked precondition the sharded-engine PR cites: every such
// variable must either not exist or appear in tools/lint/shard_allowlist.txt
// with a one-line justification saying why it is shard-safe (const-after-
// init, synchronized, intentionally process-wide).
//
// The audit covers all of src/ — the ISSUE names sim|net|transport|schemes|
// netfault|telemetry, and the remaining src layers (workload, stats, audit,
// exp) are included too because every one of them is reachable from
// experiment code; a hidden global there is just as fatal to shard
// isolation.
#include <set>

#include "analysis.h"

namespace halfback::lint {
namespace {

class ShardSafetyRule final : public ModelRule {
 public:
  explicit ShardSafetyRule(ShardAllowlist allowlist)
      : allowlist_{std::move(allowlist)} {}

  std::string_view id() const override { return "shard_safety"; }
  std::string_view description() const override {
    return "src/ must hold no mutable static-storage state outside the "
           "justified allowlist (sharded-engine precondition)";
  }
  std::string_view suppression_tag() const override { return "shard-ok"; }

  void check(const ProjectModel& model,
             std::vector<Finding>& out) const override {
    std::set<std::size_t> used;  // indices of allowlist entries that matched
    for (const GlobalVar& var : model.globals()) {
      const std::string& path = model.file(var.file).path();
      if (!path.starts_with("src/")) continue;
      const auto entry = match(var, path);
      if (entry != kNoEntry) {
        used.insert(entry);
        if (allowlist_.entries[entry].justification.empty()) {
          report(model, var.file, var.line,
                 "allowlist entry for '" + var.qualified +
                     "' carries no justification (shard_allowlist.txt line " +
                     std::to_string(allowlist_.entries[entry].source_line) +
                     ")",
                 out);
        }
        continue;
      }
      report(model, var.file, var.line,
             std::string{var.is_local_static ? "function-local static '"
                                             : "mutable static-storage "
                                               "variable '"} +
                 var.qualified +
                 "' is shared across simulator shards; remove it or justify "
                 "it in tools/lint/shard_allowlist.txt",
             out);
    }
    // A stale allowlist entry is a finding too: the state it excused is
    // gone, and keeping the entry would silently excuse a future variable
    // that happens to reuse the name.
    for (std::size_t i = 0; i < allowlist_.entries.size(); ++i) {
      if (used.contains(i)) continue;
      const ShardAllowEntry& entry = allowlist_.entries[i];
      if (const auto file = model.file_index(entry.path)) {
        report(model, *file, 1,
               "stale shard allowlist entry '" + entry.qualified +
                   "' (shard_allowlist.txt line " +
                   std::to_string(entry.source_line) +
                   ") matches no variable",
               out);
      } else {
        // The file itself is gone; anchor the finding on the allowlist
        // concept rather than a modeled file.
        out.push_back({std::string{id()}, "tools/lint/shard_allowlist.txt",
                       entry.source_line,
                       "stale entry '" + entry.qualified + "': file " +
                           entry.path + " is not in the tree"});
      }
    }
  }

 private:
  static constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

  std::size_t match(const GlobalVar& var, const std::string& path) const {
    for (std::size_t i = 0; i < allowlist_.entries.size(); ++i) {
      const ShardAllowEntry& entry = allowlist_.entries[i];
      if (entry.path == path && entry.qualified == var.qualified) return i;
    }
    return kNoEntry;
  }

  ShardAllowlist allowlist_;
};

}  // namespace

std::unique_ptr<ModelRule> make_shard_safety_rule(ShardAllowlist allowlist) {
  return std::make_unique<ShardSafetyRule>(std::move(allowlist));
}

}  // namespace halfback::lint
