// sim_escape: prove no mutable state reachable from one Simulator is
// reachable from another.
//
// The sharded parallel engine runs many Simulator instances in one
// process. shard_safety already bans process-wide mutable statics; this
// rule closes the remaining escape routes by which one instance's object
// graph can alias another's:
//
//   1. Static-storage instance caches. ANY static-storage declaration —
//      `const` included, since a `static const Simulator*` cache aliases a
//      live instance just fine; only `constexpr` is exempt — whose type is
//      a pointer/reference to a class defined under src/, or mentions
//      Simulator / FunctionRef / std::function (a stored callable captures
//      its instance), parks per-instance state at process scope.
//   2. Cross-instance bridges. A class holding two or more Simulator
//      references/pointers, or a function taking two or more Simulator
//      parameters, is structurally able to move state between instances —
//      there is no single-simulator reading of such a signature.
//   3. Member provenance. A Simulator-typed reference/pointer member must
//      be initialized from a single identifier (the constructor parameter
//      threading the owning instance down), `nullptr`, or `this`. A
//      compound initializer (`other.simulator_`, a call, arithmetic) means
//      the member's provenance is no longer the owning instance by
//      construction, and the reviewer cannot tell which simulator it
//      aliases.
//
// Escape hatches mirror shard_safety: a justified entry in
// tools/lint/escape_allowlist.txt — EMPTY BY POLICY; CI diffs it against
// the committed empty file — or a `// lint: escape-ok(reason)` tag. Stale
// allowlist entries are findings.
#include <set>
#include <sstream>

#include "analysis.h"

namespace halfback::lint {
namespace {

/// Split the space-joined type text back into tokens.
std::vector<std::string_view> type_tokens(const std::string& text) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t space = text.find(' ', pos);
    const std::size_t end = space == std::string::npos ? text.size() : space;
    if (end > pos) out.push_back({text.data() + pos, end - pos});
    pos = end + 1;
  }
  return out;
}

bool has_token(const std::vector<std::string_view>& tokens,
               std::string_view needle) {
  for (std::string_view t : tokens) {
    if (t == needle) return true;
  }
  return false;
}

class SimEscapeRule final : public ModelRule {
 public:
  explicit SimEscapeRule(ShardAllowlist allowlist)
      : allowlist_{std::move(allowlist)} {}

  std::string_view id() const override { return "sim_escape"; }
  std::string_view description() const override {
    return "no mutable state reachable from one Simulator instance may be "
           "reachable from another: no static-storage instance caches, no "
           "cross-instance bridges, single-identifier provenance for "
           "Simulator members";
  }
  std::string_view suppression_tag() const override { return "escape-ok"; }

  void check(const ProjectModel& model,
             std::vector<Finding>& out) const override {
    std::set<std::size_t> used;
    check_static_caches(model, used, out);
    check_bridges(model, used, out);
    check_member_provenance(model, used, out);
    // Stale escape-allowlist entries are findings, same as shard_safety:
    // the allowlist is empty by policy, so anything in it must be earning
    // its keep right now.
    for (std::size_t i = 0; i < allowlist_.entries.size(); ++i) {
      if (used.contains(i)) continue;
      const ShardAllowEntry& entry = allowlist_.entries[i];
      out.push_back({std::string{id()}, "tools/lint/escape_allowlist.txt",
                     entry.source_line,
                     "stale escape allowlist entry '" + entry.qualified +
                         "': no escape finding matches it"});
    }
  }

 private:
  static constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

  std::size_t match(const std::string& qualified,
                    const std::string& path) const {
    for (std::size_t i = 0; i < allowlist_.entries.size(); ++i) {
      const ShardAllowEntry& entry = allowlist_.entries[i];
      if (entry.path == path && entry.qualified == qualified) return i;
    }
    return kNoEntry;
  }

  /// Report unless allowlisted (marking the entry used) or tag-suppressed.
  void emit(const ProjectModel& model, const std::string& qualified,
            std::size_t file, int line, std::string message,
            std::set<std::size_t>& used, std::vector<Finding>& out) const {
    const std::string& path = model.file(file).path();
    const std::size_t entry = match(qualified, path);
    if (entry != kNoEntry) {
      used.insert(entry);
      return;
    }
    report(model, file, line, std::move(message), out);
  }

  void check_static_caches(const ProjectModel& model,
                           std::set<std::size_t>& used,
                           std::vector<Finding>& out) const {
    const auto& classes = model.src_classes();
    for (const StaticDecl& decl : model.static_decls()) {
      const std::string& path = model.file(decl.file).path();
      if (!path.starts_with("src/")) continue;
      const auto tokens = type_tokens(decl.type_text);
      const char* why = nullptr;
      if (has_token(tokens, "Simulator")) {
        why = "holds a Simulator";
      } else if (has_token(tokens, "FunctionRef") ||
                 has_token(tokens, "function")) {
        why = "stores a callable, which captures its instance";
      } else if (has_token(tokens, "*") || has_token(tokens, "&")) {
        for (const std::string& cls : classes) {
          if (has_token(tokens, cls)) {
            why = "points into the simulation object graph";
            break;
          }
        }
      }
      if (why == nullptr) continue;
      std::ostringstream msg;
      msg << "static-storage instance cache: '" << decl.qualified << "' ("
          << decl.type_text << ") " << why
          << "; state reachable from one Simulator must not sit at process "
             "scope where another instance can reach it";
      emit(model, decl.qualified, decl.file, decl.line, std::move(msg).str(),
           used, out);
    }
  }

  void check_bridges(const ProjectModel& model, std::set<std::size_t>& used,
                     std::vector<Finding>& out) const {
    // A class with >= 2 Simulator handles. Count per class; report at the
    // second member so the finding lands on the line that created the
    // bridge.
    std::map<std::string, int> handles;
    for (const MemberDecl& member : model.member_decls()) {
      if (!member.is_ref_or_ptr) continue;
      if (!has_token(type_tokens(member.type_text), "Simulator")) continue;
      if (++handles[member.class_name] < 2) continue;
      std::ostringstream msg;
      msg << "cross-instance bridge: class '" << member.class_name
          << "' holds " << handles[member.class_name]
          << " Simulator references ('" << member.name
          << "' is the latest); one object aliasing two simulators can "
             "carry state across shard boundaries";
      emit(model, member.class_name, member.file, member.line,
           std::move(msg).str(), used, out);
    }
    for (std::size_t i = 0; i < model.functions().size(); ++i) {
      const FunctionDef& fn = model.functions()[i];
      if (fn.simulator_params < 2) continue;
      if (!model.file(fn.file).path().starts_with("src/")) continue;
      std::ostringstream msg;
      msg << "cross-instance bridge: '" << fn.qualified << "' takes "
          << fn.simulator_params
          << " Simulator parameters; no single-instance reading of this "
             "signature exists";
      emit(model, fn.qualified, fn.file, fn.line, std::move(msg).str(), used,
           out);
    }
  }

  void check_member_provenance(const ProjectModel& model,
                               std::set<std::size_t>& used,
                               std::vector<Finding>& out) const {
    // Simulator-typed ref/ptr members, keyed (class, member).
    std::set<std::pair<std::string_view, std::string_view>> sim_members;
    for (const MemberDecl& member : model.member_decls()) {
      if (!member.is_ref_or_ptr) continue;
      if (!has_token(type_tokens(member.type_text), "Simulator")) continue;
      sim_members.insert({member.class_name, member.name});
    }
    for (const MemberInit& init : model.member_inits()) {
      if (!sim_members.contains({init.class_name, init.member})) continue;
      // A lone identifier covers the ctor parameter, `nullptr`, and
      // `this` alike — the tokenizer treats keywords as identifiers.
      const bool sanctioned =
          init.args.empty() || (init.args.size() == 1 &&
                                init.args[0].kind == TokenKind::identifier);
      if (sanctioned) continue;
      std::string args_text;
      for (const Token& t : init.args) {
        if (!args_text.empty()) args_text += ' ';
        args_text += t.text;
      }
      std::ostringstream msg;
      msg << "unclear Simulator provenance: '" << init.class_name
          << "::" << init.member << "' is initialized from '" << args_text
          << "'; a non-owning Simulator member must come from a single "
             "identifier (the owning instance threaded through the "
             "constructor), nullptr, or this";
      emit(model, init.class_name + "::" + init.member, init.file, init.line,
           std::move(msg).str(), used, out);
    }
  }

  ShardAllowlist allowlist_;
};

}  // namespace

std::unique_ptr<ModelRule> make_sim_escape_rule(ShardAllowlist allowlist) {
  return std::make_unique<SimEscapeRule>(std::move(allowlist));
}

}  // namespace halfback::lint
