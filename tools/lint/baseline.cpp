#include "baseline.h"

#include <charconv>
#include <sstream>

namespace halfback::lint {

bool Baseline::parse(const std::string& text, std::string& error) {
  std::istringstream in{text};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream fields{line};
    std::string rule;
    std::string location;
    fields >> rule >> location;
    const std::size_t colon = location.rfind(':');
    int finding_line = 0;
    bool ok = !rule.empty() && colon != std::string::npos && colon + 1 < location.size();
    if (ok) {
      const char* begin = location.data() + colon + 1;
      const char* end = location.data() + location.size();
      ok = std::from_chars(begin, end, finding_line).ptr == end;
    }
    if (!ok) {
      error = "baseline line " + std::to_string(line_no) +
              ": expected '<rule> <path>:<line>', got: " + line;
      return false;
    }
    entries_.insert({rule, location.substr(0, colon), finding_line});
  }
  return true;
}

std::vector<std::string> Baseline::stale_entries(
    const std::vector<Finding>& findings) const {
  std::set<std::tuple<std::string, std::string, int>> live;
  for (const Finding& f : findings) live.insert({f.rule, f.path, f.line});
  std::vector<std::string> stale;
  for (const auto& [rule, path, line] : entries_) {
    if (live.contains({rule, path, line})) continue;
    stale.push_back(rule + " " + path + ":" + std::to_string(line));
  }
  return stale;
}

std::string Baseline::render(const std::vector<Finding>& findings,
                             std::string_view tool) {
  std::ostringstream out;
  out << "# " << tool
      << " suppression baseline. Policy: keep this file "
         "empty;\n# justify findings inline with '// lint: <tag>(reason)' "
         "instead.\n";
  for (const Finding& f : findings) {
    out << f.rule << ' ' << f.path << ':' << f.line << '\n';
  }
  return out.str();
}

}  // namespace halfback::lint
