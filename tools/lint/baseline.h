// Suppression baseline: a checked-in list of known findings the build
// tolerates while they are being burned down. The repo's policy is that
// tools/lint/baseline.txt stays EMPTY — new code fixes or justifies its
// findings inline — but the mechanism exists so that a future rule with a
// large legacy surface can land enforcing-for-new-code on day one.
#pragma once

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "rules.h"

namespace halfback::lint {

/// Parsed baseline: the set of tolerated (rule, path, line) triples.
class Baseline {
 public:
  Baseline() = default;

  /// Parse baseline text. Each non-empty, non-'#' line reads
  /// `<rule> <path>:<line>`. Returns false (and fills `error`) on a
  /// malformed line — a silently ignored typo would un-suppress nothing
  /// and suppress nothing, the worst failure mode for this file.
  bool parse(const std::string& text, std::string& error);

  bool contains(const Finding& f) const {
    return entries_.contains({f.rule, f.path, f.line});
  }

  std::size_t size() const { return entries_.size(); }

  /// Entries matching none of `findings`, rendered as `<rule> <path>:<line>`
  /// lines. A stale entry means the finding it excused is gone — the CI
  /// drift guard (--verify-baseline) fails on these so suppressions cannot
  /// outlive their findings.
  std::vector<std::string> stale_entries(
      const std::vector<Finding>& findings) const;

  /// Render findings in baseline format (for --update-baseline). The
  /// header names the emitting tool so the CI drift guard's byte-for-byte
  /// compare against the checked-in file holds for both CLIs.
  static std::string render(const std::vector<Finding>& findings,
                            std::string_view tool = "halfback-lint");

 private:
  std::set<std::tuple<std::string, std::string, int>> entries_;
};

}  // namespace halfback::lint
