#include "effects.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace halfback::lint {
namespace {

/// The effect a piece of body evidence witnesses directly. The five
/// hot-path kinds fold into alloc/throw_; the effect kinds map one-to-one.
Effect effect_of_evidence(EvidenceKind kind) {
  switch (kind) {
    case EvidenceKind::naked_new:
    case EvidenceKind::alloc_call:
    case EvidenceKind::container_growth:
    case EvidenceKind::function_construct:
      return Effect::alloc;
    case EvidenceKind::throw_stmt:
      return Effect::throw_;
    case EvidenceKind::clock_call:
      return Effect::clock;
    case EvidenceKind::rng_call:
      return Effect::rng;
    case EvidenceKind::io_call:
      return Effect::io;
    case EvidenceKind::blocking_call:
      return Effect::block;
    case EvidenceKind::global_write:
      return Effect::global_mut;
  }
  return Effect::alloc;  // unreachable
}

}  // namespace

std::string_view to_string(Effect effect) {
  switch (effect) {
    case Effect::alloc: return "alloc";
    case Effect::throw_: return "throw";
    case Effect::clock: return "clock";
    case Effect::rng: return "rng";
    case Effect::io: return "io";
    case Effect::global_mut: return "global_mut";
    case Effect::block: return "block";
  }
  return "?";
}

std::optional<Effect> effect_from_token(std::string_view token) {
  for (int e = 0; e < kEffectCount; ++e) {
    if (to_string(static_cast<Effect>(e)) == token) {
      return static_cast<Effect>(e);
    }
  }
  return std::nullopt;
}

std::string EffectSet::to_string() const {
  std::string out;
  for (int e = 0; e < kEffectCount; ++e) {
    if (!contains(static_cast<Effect>(e))) continue;
    if (!out.empty()) out += ", ";
    out += lint::to_string(static_cast<Effect>(e));
  }
  return out.empty() ? "pure" : out;
}

EffectAnalysis::EffectAnalysis(const ProjectModel& model,
                               const SeamInventory& seams)
    : model_{model} {
  const auto& functions = model.functions();
  effects_.assign(functions.size(), {});
  origins_.assign(functions.size(), {});

  // Local pass: body evidence, plus bare writes that hit the global
  // inventory (locals shadowing a global name are a conservative
  // over-approximation the tree keeps at zero).
  std::set<std::string_view> global_names;
  for (const GlobalVar& g : model.globals()) global_names.insert(g.name);
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const FunctionDef& fn = functions[i];
    for (const Evidence& ev : fn.evidence) {
      const Effect e = effect_of_evidence(ev.kind);
      if (!effects_[i].contains(e)) {
        origins_[i][static_cast<int>(e)] = {EffectOrigin::kLocal, ev.line,
                                            ev.detail};
        effects_[i].add(e);
      }
    }
    for (const WriteSite& w : fn.writes) {
      if (!global_names.contains(w.name)) continue;
      if (!effects_[i].contains(Effect::global_mut)) {
        origins_[i][static_cast<int>(Effect::global_mut)] = {
            EffectOrigin::kLocal, w.line, w.name + " ="};
        effects_[i].add(Effect::global_mut);
      }
    }
  }

  // Per-call-site edges with the sanctioned seams cut out. A seam entry
  // says "this indirection is tolerated": the callee's effects are the
  // seam implementor's business (checked at its own definition), not the
  // caller's, exactly as hot_path_reach stops reporting there.
  struct Edge {
    std::size_t callee;
    int line;
  };
  std::vector<std::vector<Edge>> edges(functions.size());
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const FunctionDef& fn = functions[i];
    const std::string& path = model.file(fn.file).path();
    for (const CallSite& call : fn.calls) {
      if (seams.find(fn.qualified, call.callee, path) <
          seams.entries.size()) {
        continue;
      }
      for (std::size_t target : model.resolve_call(i, call)) {
        edges[i].push_back({target, call.line});
      }
    }
  }

  // Fixpoint: union callee sets into callers until stable. The lattice
  // has 7 bits, so each function changes at most 7 times; a plain sweep
  // loop converges in a handful of passes on this tree.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < functions.size(); ++i) {
      for (const Edge& edge : edges[i]) {
        for (int e = 0; e < kEffectCount; ++e) {
          const Effect effect = static_cast<Effect>(e);
          if (!effects_[edge.callee].contains(effect) ||
              effects_[i].contains(effect)) {
            continue;
          }
          origins_[i][e] = {edge.callee, edge.line,
                            functions[edge.callee].name};
          effects_[i].add(effect);
          changed = true;
        }
      }
    }
  }
}

std::string EffectAnalysis::witness(std::size_t fn, Effect effect) const {
  if (!effects_[fn].contains(effect)) return {};
  const auto& functions = model_.functions();
  std::ostringstream out;
  std::size_t node = fn;
  out << functions[node].qualified;
  while (true) {
    const EffectOrigin& origin = origins_[node][static_cast<int>(effect)];
    if (origin.next_hop == EffectOrigin::kLocal) {
      out << ": " << to_string(effect) << " ('" << origin.detail << "') at "
          << model_.file(functions[node].file).path() << ":" << origin.line;
      return std::move(out).str();
    }
    node = origin.next_hop;
    out << " -> " << functions[node].qualified;
  }
}

}  // namespace halfback::lint
