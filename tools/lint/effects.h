// The interprocedural effect-inference engine behind the `effects` rule.
//
// An effect is something a function does to the world beyond computing its
// result: allocate, throw, read a wall clock, draw randomness, touch
// ambient I/O, mutate process-wide state, or block the calling thread.
// The engine infers the effect set of every function in the model
// bottom-up over the call graph:
//
//   1. a local pass maps body evidence (model.h) to leaf effects, plus
//      bare-identifier writes intersected with the global inventory for
//      global_mut;
//   2. a fixpoint pass unions each function's set with its callees',
//      resolving every call site individually so propagation can stop at
//      the sanctioned seams (hot_seams.txt) — the same inventory the
//      hot-path rule consumes, so one file enumerates every tolerated
//      indirection for both engines.
//
// Indirect calls are handled the way the whole model is: a member call
// resolves to every definition sharing the name (the PR-7 VirtualMethod
// inventory makes the virtual set explicit, and name-union is a superset
// of any devirtualization), so inference over-approximates dispatch but
// never follows an edge the tokenizer cannot justify. Calls into code the
// model has no body for (std::, libc) contribute only what the leaf name
// tables already attribute to the call site itself — the engine misses
// unknown effects rather than inventing them, which is why contracts are
// checked in both directions (a too-narrow contract is a violation, a
// too-wide one is also a finding: inference exactness is the product).
//
// Every inferred bit carries a witness: the next hop (callee) or local
// evidence it came from, so findings print the full call chain down to
// the offending token.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "analysis.h"
#include "model.h"

namespace halfback::lint {

/// The effect lattice: one bit each, joined by union.
enum class Effect : std::uint8_t {
  alloc,       ///< heap allocation (new/make_unique/growth/std::function)
  throw_,      ///< may throw
  clock,       ///< reads a wall clock (sim virtual time is NOT clock)
  rng,         ///< constructs or draws from an RNG
  io,          ///< ambient I/O: files, stdio streams, environment
  global_mut,  ///< mutates state with static storage duration
  block,       ///< blocks the thread: locks, joins, waits, sleeps
};

inline constexpr int kEffectCount = 7;

std::string_view to_string(Effect effect);

/// The contract-token spelling ("throw" is a keyword, so contracts write
/// the enumerator names below). Returns nullopt for an unknown token.
std::optional<Effect> effect_from_token(std::string_view token);

/// A small set-of-Effect bitmask.
class EffectSet {
 public:
  constexpr EffectSet() = default;

  void add(Effect e) { bits_ |= bit(e); }
  bool contains(Effect e) const { return (bits_ & bit(e)) != 0; }
  bool subset_of(EffectSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  bool operator==(const EffectSet&) const = default;
  std::uint8_t bits() const { return bits_; }

  /// Comma-joined effect tokens in enum order; "pure" when empty.
  std::string to_string() const;

 private:
  static constexpr std::uint8_t bit(Effect e) {
    return static_cast<std::uint8_t>(1u << static_cast<unsigned>(e));
  }
  std::uint8_t bits_ = 0;
};

/// Where one inferred effect bit came from.
struct EffectOrigin {
  static constexpr std::size_t kLocal = static_cast<std::size_t>(-1);
  std::size_t next_hop = kLocal;  ///< callee function index, or kLocal
  int line = 0;                   ///< evidence line / call-site line
  std::string detail;             ///< evidence detail, e.g. "make_unique"
};

/// Inferred effects for every function in a ProjectModel.
class EffectAnalysis {
 public:
  /// Runs local inference + the seam-aware fixpoint. `seams` call sites
  /// (caller-qualified, callee, file) do not propagate callee effects.
  EffectAnalysis(const ProjectModel& model, const SeamInventory& seams);

  EffectSet of(std::size_t fn) const { return effects_[fn]; }

  /// Render the call chain proving `fn` has `effect`:
  /// "A -> B -> C: <evidence> ('token') at <path>:<line>". Empty when the
  /// function does not have the effect.
  std::string witness(std::size_t fn, Effect effect) const;

 private:
  const ProjectModel& model_;
  std::vector<EffectSet> effects_;
  /// origins_[fn][effect index]: provenance of that bit.
  std::vector<std::array<EffectOrigin, kEffectCount>> origins_;
};

}  // namespace halfback::lint
