// halfback-lint: the project's determinism & unit-safety static analysis.
//
//   halfback-lint --root <repo>                 lint src/ under <repo>
//   halfback-lint --root <repo> <file> [...]    lint specific files
//   halfback-lint --root <repo> --as src/x.cpp <file>
//                                               lint a file under a logical
//                                               path (fixture testing)
//   --baseline <file>       tolerate findings listed in <file>
//   --update-baseline <file>  write current findings to <file> and exit 0
//   --verify-baseline <file>  exit 1 if <file> has entries matching no
//                           finding (the CI drift guard)
//   --rule <id>             run a single rule
//   --jobs <n>              scan files on n workers (output is identical)
//   --list-rules            print the rule table and exit
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "runner.h"

namespace {

using namespace halfback::lint;

struct Options {
  std::filesystem::path root = ".";
  std::string baseline_path;
  std::string update_baseline_path;
  std::string verify_baseline_path;
  std::string only_rule;
  int jobs = 1;
  std::string as_path;
  std::vector<std::string> files;
  bool list_rules = false;
};

int usage(std::ostream& out, int code) {
  out << "usage: halfback-lint --root <repo> [--baseline <file>] "
         "[--update-baseline <file>]\n"
         "                     [--verify-baseline <file>] [--rule <id>] "
         "[--jobs <n>]\n"
         "                     [--list-rules] [--as <logical-path>] "
         "[files...]\n";
  return code;
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&](std::string& into) {
      if (i + 1 >= argc) return false;
      into = argv[++i];
      return true;
    };
    std::string root_value;
    if (arg == "--root") {
      if (!value(root_value)) return false;
      opts.root = root_value;
    } else if (arg == "--baseline") {
      if (!value(opts.baseline_path)) return false;
    } else if (arg == "--update-baseline") {
      if (!value(opts.update_baseline_path)) return false;
    } else if (arg == "--verify-baseline") {
      if (!value(opts.verify_baseline_path)) return false;
    } else if (arg == "--jobs") {
      std::string jobs_value;
      if (!value(jobs_value)) return false;
      try {
        opts.jobs = std::stoi(jobs_value);
      } catch (const std::exception&) {
        return false;
      }
      if (opts.jobs < 1) return false;
    } else if (arg == "--rule") {
      if (!value(opts.only_rule)) return false;
    } else if (arg == "--as") {
      if (!value(opts.as_path)) return false;
    } else if (arg == "--list-rules") {
      opts.list_rules = true;
    } else if (arg.starts_with("--")) {
      return false;
    } else {
      opts.files.emplace_back(arg);
    }
  }
  return !(opts.as_path.size() && opts.files.size() != 1);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage(std::cerr, 2);

  if (opts.list_rules) {
    for (const auto& rule : all_rules()) {
      std::cout << rule->id() << "\n    " << rule->description();
      if (!rule->suppression_tag().empty()) {
        std::cout << "\n    suppression: // lint: " << rule->suppression_tag()
                  << "(reason)";
      }
      std::cout << "\n";
    }
    return 0;
  }

  auto load = [](const std::string& path, Baseline& into) {
    std::ifstream in{path};
    if (!in) {
      std::cerr << "halfback-lint: cannot read baseline " << path << "\n";
      return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!into.parse(text.str(), error)) {
      std::cerr << "halfback-lint: " << error << "\n";
      return false;
    }
    return true;
  };
  Baseline baseline;
  if (!opts.baseline_path.empty() && !load(opts.baseline_path, baseline)) {
    return 2;
  }
  Baseline verify;
  if (!opts.verify_baseline_path.empty() &&
      !load(opts.verify_baseline_path, verify)) {
    return 2;
  }

  std::vector<Finding> findings;
  try {
    if (opts.files.empty()) {
      findings = lint_tree(opts.root, opts.only_rule, opts.jobs);
    } else {
      for (const std::string& f : opts.files) {
        const std::string logical =
            !opts.as_path.empty()
                ? opts.as_path
                : std::filesystem::relative(f, opts.root).generic_string();
        auto file_findings = lint_path(f, logical, opts.only_rule);
        findings.insert(findings.end(), file_findings.begin(), file_findings.end());
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "halfback-lint: " << e.what() << "\n";
    return 2;
  }

  if (!opts.update_baseline_path.empty()) {
    std::ofstream out{opts.update_baseline_path};
    out << Baseline::render(findings);
    std::cout << "halfback-lint: wrote " << findings.size() << " finding(s) to "
              << opts.update_baseline_path << "\n";
    return 0;
  }

  if (!opts.verify_baseline_path.empty()) {
    const auto stale = verify.stale_entries(findings);
    if (!stale.empty()) {
      for (const std::string& entry : stale) {
        std::cout << "stale baseline entry: " << entry << "\n";
      }
      std::cout << "halfback-lint: " << stale.size()
                << " stale baseline entr(ies) in " << opts.verify_baseline_path
                << "\n";
      return 1;
    }
  }

  std::size_t reported = 0;
  for (const Finding& f : findings) {
    if (baseline.contains(f)) continue;
    ++reported;
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
              << "\n";
  }
  if (reported == 0) {
    std::cout << "halfback-lint: clean (" << findings.size()
              << " finding(s) total, " << baseline.size()
              << " baseline entr(ies))\n";
    return 0;
  }
  std::cout << "halfback-lint: " << reported << " finding(s)\n";
  return 1;
}
