#include "model.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "rules_internal.h"

namespace halfback::lint {
namespace {

using scan::ident_at;
using scan::punct_at;
using scan::skip_angles;
using scan::skip_group;

bool is_rng_type_name(std::string_view name) {
  static constexpr std::array<std::string_view, 9> kNames{
      "Random",        "mt19937",   "mt19937_64",
      "minstd_rand",   "minstd_rand0",
      "default_random_engine",      "ranlux24",
      "ranlux48",      "knuth_b",
  };
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

bool is_alloc_call(std::string_view name) {
  static constexpr std::array<std::string_view, 7> kNames{
      "make_unique", "make_shared", "malloc",      "calloc",
      "realloc",     "strdup",      "aligned_alloc",
  };
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

bool is_growth_call(std::string_view name) {
  static constexpr std::array<std::string_view, 9> kNames{
      "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
      "insert",    "resize",       "reserve",    "append",
  };
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

bool is_clock_call(std::string_view name) {
  static constexpr std::array<std::string_view, 3> kNames{
      "gettimeofday", "clock_gettime", "timespec_get",
  };
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

/// Draw methods of sim::Random (member calls); the construction side is
/// covered by is_rng_type_name.
bool is_rng_draw_call(std::string_view name) {
  static constexpr std::array<std::string_view, 8> kNames{
      "uniform",     "bernoulli",      "exponential", "lognormal",
      "pareto",      "log_uniform",    "weighted_index", "fork",
  };
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

bool is_io_call(std::string_view name) {
  static constexpr std::array<std::string_view, 12> kNames{
      "fopen",  "fclose", "fprintf", "printf", "fputs",  "puts",
      "fwrite", "fread",  "fscanf",  "scanf",  "getenv", "system",
  };
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

/// Ambient-I/O objects and stream types whose mere mention in a body means
/// the function talks to the process environment. Caller-supplied
/// `std::ostream&` parameters deliberately do NOT trip this: writing to a
/// stream the caller chose is the caller's effect, not ambient I/O.
bool is_io_object(std::string_view name) {
  static constexpr std::array<std::string_view, 6> kNames{
      "cout", "cerr", "clog", "ofstream", "ifstream", "fstream",
  };
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

bool is_blocking_call(std::string_view name) {
  static constexpr std::array<std::string_view, 10> kNames{
      "join",      "wait",        "wait_for", "wait_until", "sleep_for",
      "sleep_until", "lock",      "sleep",    "usleep",     "nanosleep",
  };
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

/// Scoped-lock guard types: constructing one blocks on the mutex.
bool is_blocking_guard(std::string_view name) {
  static constexpr std::array<std::string_view, 5> kNames{
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock", "MutexLock",
  };
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

/// Single-char operators that form a compound assignment with a trailing
/// `=` (the tokenizer splits `+=` into `+` `=`; only `::` and `->` fuse).
bool is_compoundable_op(std::string_view punct) {
  static constexpr std::array<std::string_view, 8> kOps{
      "+", "-", "*", "/", "%", "|", "&", "^",
  };
  return std::find(kOps.begin(), kOps.end(), punct) != kOps.end();
}

/// Statement keywords an `ident (` sequence must not treat as a call.
bool is_control_keyword(std::string_view name) {
  static constexpr std::array<std::string_view, 8> kNames{
      "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
  };
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

/// Declaration keywords that can precede a variable/function name.
bool is_decl_keyword(std::string_view name) {
  static constexpr std::array<std::string_view, 12> kNames{
      "const",  "constexpr", "constinit", "inline", "static", "extern",
      "mutable", "volatile",  "thread_local", "virtual", "explicit", "auto",
  };
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

std::string last_component(std::string_view qualified) {
  const auto pos = qualified.rfind("::");
  return std::string{pos == std::string_view::npos
                         ? qualified
                         : qualified.substr(pos + 2)};
}

/// Parses one file's token stream into the model's tables. The grammar is
/// the same "faithful about what is code" approximation the per-file rules
/// use: scopes are tracked by brace matching, declarations by a handful of
/// leading keywords, functions by the `name (params) qualifiers {` shape.
class FileParser {
 public:
  struct Tables {
    std::vector<FunctionDef>& functions;
    std::vector<GlobalVar>& globals;
    std::vector<RngConstruction>& rng_sites;
    std::vector<std::string>& rng_member_names;
    std::vector<std::pair<std::string, RngConstruction>>& pending_inits;
    std::vector<VirtualMethod>& virtual_methods;
    std::vector<EffectContract>& contracts;
    std::vector<StaticDecl>& static_decls;
    std::vector<MemberDecl>& member_decls;
    std::vector<MemberInit>& member_inits;
    std::vector<std::string>& src_classes;
  };

  FileParser(const SourceFile& file, std::size_t file_index, Tables tables)
      : f_{file},
        index_{file_index},
        code_{file.code()},
        functions_{tables.functions},
        globals_{tables.globals},
        rng_sites_{tables.rng_sites},
        rng_member_names_{tables.rng_member_names},
        member_inits_{tables.pending_inits},
        virtual_methods_{tables.virtual_methods},
        contracts_{tables.contracts},
        static_decls_{tables.static_decls},
        member_decls_{tables.member_decls},
        retained_inits_{tables.member_inits},
        src_classes_{tables.src_classes},
        in_src_{file.path().starts_with("src/")} {}

  void run() {
    std::size_t i = 0;
    while (i < code_.size()) i = parse_at_scope(i);
  }

 private:
  struct Scope {
    enum class Kind { ns, type } kind;
    std::string name;
  };

  bool in_type_scope() const {
    return !scopes_.empty() && scopes_.back().kind == Scope::Kind::type;
  }

  std::string scope_prefix() const {
    std::string out;
    for (const Scope& s : scopes_) {
      if (s.name.empty()) continue;
      out += s.name;
      out += "::";
    }
    return out;
  }

  /// Skip a balanced token group when code_[i] opens one; otherwise ++i.
  std::size_t advance_past(std::size_t i) const {
    if (punct_at(code_, i, "(")) return skip_group(code_, i, "(", ")");
    if (punct_at(code_, i, "{")) return skip_group(code_, i, "{", "}");
    if (punct_at(code_, i, "[")) return skip_group(code_, i, "[", "]");
    return i + 1;
  }

  /// Index just past the `;` terminating the construct at `i` (groups
  /// skipped); stops early at a scope-closing `}`.
  std::size_t skip_to_semicolon(std::size_t i) const {
    while (i < code_.size()) {
      if (punct_at(code_, i, ";")) return i + 1;
      if (punct_at(code_, i, "}")) return i;  // scope close: let caller pop
      i = advance_past(i);
    }
    return i;
  }

  // ---- scope-level dispatch ----------------------------------------------

  std::size_t parse_at_scope(std::size_t i) {
    if (punct_at(code_, i, "}")) {
      if (!scopes_.empty()) scopes_.pop_back();
      return i + 1;
    }
    if (punct_at(code_, i, ";") || punct_at(code_, i, "{")) {
      // stray semicolon / unclaimed brace (e.g. attribute blocks): treat an
      // unclaimed brace as an anonymous scope so matching stays balanced.
      if (punct_at(code_, i, "{")) scopes_.push_back({Scope::Kind::ns, ""});
      return i + 1;
    }
    if (ident_at(code_, i, "namespace")) return parse_namespace(i);
    if (ident_at(code_, i, "using") || ident_at(code_, i, "typedef") ||
        ident_at(code_, i, "static_assert") || ident_at(code_, i, "friend")) {
      return skip_to_semicolon(i);
    }
    if (ident_at(code_, i, "template")) {
      // Skip the parameter list; the declaration that follows parses as
      // usual (its body evidence is collected like any other function's).
      if (i + 1 < code_.size() && punct_at(code_, i + 1, "<")) {
        return skip_angles(code_, i + 1);
      }
      return i + 1;
    }
    if (ident_at(code_, i, "extern")) {
      // `extern "C" {` opens a linkage scope; other externs are
      // declarations, not definitions, so they produce no inventory rows.
      if (i + 2 < code_.size() && code_[i + 1].kind == TokenKind::string_lit &&
          punct_at(code_, i + 2, "{")) {
        scopes_.push_back({Scope::Kind::ns, ""});
        return i + 3;
      }
      return skip_to_semicolon(i);
    }
    if (ident_at(code_, i, "enum")) {
      std::size_t j = i + 1;
      while (j < code_.size() && !punct_at(code_, j, "{") &&
             !punct_at(code_, j, ";")) {
        ++j;
      }
      if (j < code_.size() && punct_at(code_, j, "{")) {
        j = skip_group(code_, j, "{", "}");
      }
      return skip_to_semicolon(j);
    }
    if ((ident_at(code_, i, "class") || ident_at(code_, i, "struct") ||
         ident_at(code_, i, "union"))) {
      return parse_type(i);
    }
    if (in_type_scope() &&
        (ident_at(code_, i, "public") || ident_at(code_, i, "private") ||
         ident_at(code_, i, "protected")) &&
        punct_at(code_, i + 1, ":")) {
      return i + 2;
    }
    return parse_declaration(i);
  }

  std::size_t parse_namespace(std::size_t i) {
    // `namespace a::b {`, `namespace {`, or an alias `namespace x = y;`.
    std::string name;
    std::size_t j = i + 1;
    while (j < code_.size() && !punct_at(code_, j, "{") &&
           !punct_at(code_, j, ";") && !punct_at(code_, j, "=")) {
      if (code_[j].kind == TokenKind::identifier ||
          code_[j].punct_is("::")) {
        name += code_[j].text;
      }
      ++j;
    }
    if (j < code_.size() && punct_at(code_, j, "{")) {
      scopes_.push_back({Scope::Kind::ns, name});
      return j + 1;
    }
    return skip_to_semicolon(j);
  }

  std::size_t parse_type(std::size_t i) {
    // Scan the head for the type name; `{` starts the body, `;` is a
    // forward declaration (or an elaborated-type variable, skipped).
    std::string name;
    std::size_t j = i + 1;
    while (j < code_.size() && !punct_at(code_, j, "{") &&
           !punct_at(code_, j, ";")) {
      if (code_[j].kind == TokenKind::identifier && !ident_at(code_, j, "final") &&
          !ident_at(code_, j, "alignas")) {
        if (punct_at(code_, j + 1, ":") || punct_at(code_, j + 1, "{") ||
            ident_at(code_, j + 1, "final")) {
          name = code_[j].text;
        }
      }
      if (punct_at(code_, j, ":")) {
        // Base clause: everything to `{` belongs to it.
        while (j < code_.size() && !punct_at(code_, j, "{") &&
               !punct_at(code_, j, ";")) {
          if (punct_at(code_, j, "<")) {
            j = skip_angles(code_, j);
          } else {
            ++j;
          }
        }
        break;
      }
      ++j;
    }
    if (j < code_.size() && punct_at(code_, j, "{")) {
      if (in_src_ && !name.empty()) src_classes_.push_back(name);
      scopes_.push_back({Scope::Kind::type, name});
      return j + 1;
    }
    return skip_to_semicolon(j);
  }

  // ---- general declarations ----------------------------------------------

  std::size_t parse_declaration(std::size_t start) {
    bool saw_const = false;
    bool saw_constexpr = false;
    bool saw_static = false;
    bool saw_virtual = false;
    std::string last_ident;
    std::size_t last_ident_idx = 0;
    std::string rng_type;  // nonempty when the decl-specifiers name an RNG
    std::size_t i = start;
    while (i < code_.size()) {
      const Token& t = code_[i];
      if (t.kind == TokenKind::identifier) {
        if (t.text == "const" || t.text == "constexpr" ||
            t.text == "constinit") {
          saw_const = true;
          if (t.text != "const") saw_constexpr = true;
          ++i;
          continue;
        }
        if (t.text == "static") {
          saw_static = true;
          ++i;
          continue;
        }
        if (t.text == "operator") return parse_operator(start, i);
        if (t.text == "virtual") {
          saw_virtual = true;
          ++i;
          continue;
        }
        if (is_decl_keyword(t.text)) {
          ++i;
          continue;
        }
        if (is_rng_type_name(t.text)) rng_type = t.text;
        last_ident = t.text;
        last_ident_idx = i;
        // `name (` → function declarator or paren-init; decide by suffix.
        if (punct_at(code_, i + 1, "(")) {
          return parse_callable(start, i, saw_virtual);
        }
        // `Type{args}` temporary at declaration scope is rare; the in-body
        // scan handles the ones that matter.
        ++i;
        continue;
      }
      if (t.punct_is("<")) {
        i = skip_angles(code_, i);
        continue;
      }
      if (t.punct_is("~")) {  // destructor: `~Name (` with no return type
        if (i + 2 < code_.size() &&
            code_[i + 1].kind == TokenKind::identifier &&
            punct_at(code_, i + 2, "(")) {
          return parse_callable(start, i + 1, saw_virtual, /*dtor=*/true);
        }
        ++i;
        continue;
      }
      if (t.punct_is("=") || t.punct_is("{") || t.punct_is(";") ||
          t.punct_is("[")) {
        return finish_variable(start, i, last_ident, last_ident_idx, rng_type,
                               saw_const, saw_constexpr, saw_static);
      }
      if (t.punct_is("}")) return i;  // malformed / scope close
      ++i;
    }
    return i;
  }

  std::size_t parse_operator(std::size_t start, std::size_t i) {
    // `operator<sym>(...)` / conversion operator. Name the definition
    // "operator<sym>" and parse it like any callable so body evidence is
    // still collected; calls to operators are not name-resolvable anyway.
    std::string name = "operator";
    std::size_t j = i + 1;
    while (j < code_.size() && !punct_at(code_, j, "(")) {
      name += code_[j].text;
      ++j;
    }
    if (j >= code_.size()) return j;
    return parse_callable_named(start, j, name, /*class_qual=*/"");
  }

  std::size_t parse_callable(std::size_t start, std::size_t name_idx,
                             bool saw_virtual, bool dtor = false) {
    // Walk back over a `Class ::` (possibly nested) qualifier chain.
    std::string class_qual;
    std::size_t back = dtor ? name_idx - 1 : name_idx;  // `~` sits before name
    while (back >= 2 && code_[back - 1].punct_is("::") &&
           code_[back - 2].kind == TokenKind::identifier) {
      class_qual = class_qual.empty()
                       ? code_[back - 2].text
                       : code_[back - 2].text + "::" + class_qual;
      back -= 2;
    }
    std::string name = (dtor ? "~" : "") + code_[name_idx].text;
    return parse_callable_named(start, name_idx + 1, name, class_qual,
                                saw_virtual);
  }

  /// `open_idx` is the index of the parameter-list `(`.
  std::size_t parse_callable_named(std::size_t start, std::size_t open_idx,
                                   const std::string& name,
                                   const std::string& class_qual,
                                   bool saw_virtual = false) {
    const std::size_t params_end = skip_group(code_, open_idx, "(", ")");
    const std::string qualified =
        scope_prefix() + (class_qual.empty() ? "" : class_qual + "::") + name;
    bool has_override = false;
    bool has_noexcept = false;
    std::size_t j = params_end;
    while (j < code_.size()) {
      const Token& t = code_[j];
      if (t.punct_is("{") || t.punct_is(";") || t.punct_is("=") ||
          t.punct_is(":") || t.punct_is(",") || t.punct_is(")") ||
          t.punct_is("}")) {
        break;
      }
      if (t.ident("override")) has_override = true;
      if (t.ident("noexcept")) has_noexcept = true;
      if (t.ident("HB_EFFECTS") && punct_at(code_, j + 1, "(")) {
        // The macro expands to nothing for the compiler; the analyzer reads
        // its argument list as the declared effect contract. Contracts on
        // declarations and definitions share the qualified-name key, so a
        // header contract meets its .cpp body in the effects rule.
        EffectContract contract;
        contract.qualified = qualified;
        contract.file = index_;
        contract.line = t.line;
        const std::size_t close = skip_group(code_, j + 1, "(", ")");
        for (std::size_t k = j + 2; k + 1 < close; ++k) {
          if (code_[k].kind == TokenKind::identifier) {
            contract.declared.push_back(code_[k].text);
          }
        }
        contracts_.push_back(std::move(contract));
        j = close;
        continue;
      }
      if (t.punct_is("->") || t.punct_is("<")) {
        if (t.punct_is("<")) {
          j = skip_angles(code_, j);
          continue;
        }
        ++j;
        continue;
      }
      if (punct_at(code_, j, "(")) {  // noexcept(...) / attribute groups
        j = skip_group(code_, j, "(", ")");
        continue;
      }
      ++j;
    }
    (void)has_noexcept;
    // Inventory virtual member declarations (bodies not required, so pure
    // virtuals count; `override` implies a virtual base). Destructors are
    // skipped: a member call can never name one.
    const std::string decl_class =
        !class_qual.empty() ? last_component(class_qual)
                            : (in_type_scope() ? scopes_.back().name : "");
    if ((saw_virtual || has_override) && !decl_class.empty() &&
        !name.empty() && name[0] != '~') {
      virtual_methods_.push_back(
          {name, decl_class, index_, code_[open_idx].line});
    }
    if (j >= code_.size()) return j;
    if (punct_at(code_, j, ";") || punct_at(code_, j, "=") ||
        punct_at(code_, j, ",") || punct_at(code_, j, ")") ||
        punct_at(code_, j, "}")) {
      // Declaration only (or `= default/delete/0`, or a paren-init
      // variable, or a macro invocation): nothing to model.
      return skip_to_semicolon(start < j ? j : start);
    }
    FunctionDef fn;
    fn.name = name;
    fn.class_name = !class_qual.empty()
                        ? last_component(class_qual)
                        : (in_type_scope() ? scopes_.back().name : "");
    fn.qualified = qualified;
    fn.file = index_;
    fn.line = code_[open_idx].line;
    fn.is_fire_override = (name == "fire") && has_override;
    for (std::size_t k = open_idx + 1; k + 1 < params_end; ++k) {
      if (code_[k].ident("Simulator") &&
          (punct_at(code_, k + 1, "&") || punct_at(code_, k + 1, "*"))) {
        ++fn.simulator_params;
      }
    }
    if (punct_at(code_, j, ":")) j = parse_ctor_init_list(j + 1, fn);
    if (j >= code_.size() || !punct_at(code_, j, "{")) {
      return skip_to_semicolon(j);
    }
    const std::size_t body_end = skip_group(code_, j, "{", "}");
    scan_body(j + 1, body_end > 0 ? body_end - 1 : j + 1, fn);
    functions_.push_back(std::move(fn));
    return body_end;
  }

  /// Parse `: member(args), member{args}, Base(args) ...` up to the body
  /// `{`. Member initializers are recorded for the RNG-taint rule (filtered
  /// against RNG-typed member names at finalize) and their argument tokens
  /// are also scanned as body evidence.
  std::size_t parse_ctor_init_list(std::size_t i, FunctionDef& fn) {
    while (i < code_.size()) {
      // Member or base name (skip qualifiers/templates).
      std::string member;
      int line = code_[i].line;
      while (i < code_.size() && (code_[i].kind == TokenKind::identifier ||
                                  code_[i].punct_is("::"))) {
        if (code_[i].kind == TokenKind::identifier) member = code_[i].text;
        line = code_[i].line;
        ++i;
      }
      if (i < code_.size() && punct_at(code_, i, "<")) i = skip_angles(code_, i);
      if (i >= code_.size()) return i;
      if (punct_at(code_, i, "(") || punct_at(code_, i, "{")) {
        const bool brace = punct_at(code_, i, "{");
        const std::size_t end =
            skip_group(code_, i, brace ? "{" : "(", brace ? "}" : ")");
        RngConstruction init;
        init.var_name = member;
        init.file = index_;
        init.line = line;
        init.args.assign(code_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                         code_.begin() + static_cast<std::ptrdiff_t>(end) - 1);
        init.default_constructed = init.args.empty();
        if (in_src_ && !fn.class_name.empty()) {
          MemberInit retained;
          retained.class_name = fn.class_name;
          retained.member = member;
          retained.args = init.args;
          retained.file = index_;
          retained.line = line;
          retained_inits_.push_back(std::move(retained));
        }
        member_inits_.emplace_back(member, std::move(init));
        scan_body(i + 1, end - 1, fn);  // calls inside init args still count
        i = end;
      }
      if (i < code_.size() && punct_at(code_, i, ",")) {
        ++i;
        continue;
      }
      return i;  // expect the body `{` here
    }
    return i;
  }

  /// Space-joined text of the declaration's type tokens: everything in
  /// [start, stop) except the declared-name token itself.
  std::string type_text(std::size_t start, std::size_t stop,
                        std::size_t name_idx) const {
    std::string out;
    for (std::size_t k = start; k < stop && k < code_.size(); ++k) {
      if (k == name_idx) continue;
      if (!out.empty()) out += ' ';
      out += code_[k].text;
    }
    return out;
  }

  std::size_t finish_variable(std::size_t start, std::size_t stop_idx,
                              const std::string& name, std::size_t name_idx,
                              const std::string& rng_type, bool saw_const,
                              bool saw_constexpr, bool saw_static) {
    const int line = code_[start].line;
    const bool at_type_scope = in_type_scope();
    if (!name.empty() && !saw_const) {
      if (!at_type_scope) {
        globals_.push_back(
            {name, scope_prefix() + name, index_, line, /*local=*/false});
      } else if (saw_static) {
        // Mutable static data member: as process-wide as any global.
        globals_.push_back(
            {name, scope_prefix() + name, index_, line, /*local=*/false});
      }
    }
    if (!name.empty() && !saw_constexpr &&
        (!at_type_scope || saw_static)) {
      // Static storage duration, `const` included (a `static const
      // Simulator*` cache is exactly what sim_escape hunts), `constexpr`
      // excluded: a constant expression cannot hold a runtime address.
      StaticDecl decl;
      decl.name = name;
      decl.qualified = scope_prefix() + name;
      decl.type_text = type_text(start, stop_idx, name_idx);
      decl.file = index_;
      decl.line = line;
      decl.is_const = saw_const;
      static_decls_.push_back(std::move(decl));
    }
    if (in_src_ && at_type_scope && !saw_static && !name.empty() &&
        !scopes_.back().name.empty()) {
      MemberDecl member;
      member.class_name = scopes_.back().name;
      member.name = name;
      member.type_text = type_text(start, stop_idx, name_idx);
      for (std::size_t k = start; k < stop_idx; ++k) {
        if (k == name_idx) continue;
        if (code_[k].punct_is("*") || code_[k].punct_is("&") ||
            code_[k].punct_is("&&")) {
          member.is_ref_or_ptr = true;
        }
      }
      member.file = index_;
      member.line = line;
      member_decls_.push_back(std::move(member));
    }
    if (!rng_type.empty() && !name.empty()) {
      if (at_type_scope) rng_member_names_.push_back(name);
      RngConstruction site;
      site.type_name = rng_type;
      site.var_name = name;
      site.file = index_;
      site.line = line;
      if (punct_at(code_, stop_idx, "{") || punct_at(code_, stop_idx, "(")) {
        const bool brace = punct_at(code_, stop_idx, "{");
        const std::size_t end = skip_group(code_, stop_idx, brace ? "{" : "(",
                                           brace ? "}" : ")");
        site.args.assign(
            code_.begin() + static_cast<std::ptrdiff_t>(stop_idx) + 1,
            code_.begin() + static_cast<std::ptrdiff_t>(end) - 1);
        site.default_constructed = site.args.empty();
        rng_sites_.push_back(std::move(site));
      } else if (punct_at(code_, stop_idx, ";") && !at_type_scope) {
        // `std::mt19937 gen;` at namespace scope: default-seeded engine.
        site.default_constructed = true;
        rng_sites_.push_back(std::move(site));
      }
      // A bare member declaration (`sim::Random rng_;`) is constructed in a
      // ctor-init-list; the pending member-init table covers it.
    }
    // Skip the initializer. A brace group not followed by `;` is an
    // unrecognized definition body (e.g. an operator we failed to classify);
    // consume just the group so the next declaration parses cleanly.
    std::size_t i = stop_idx;
    if (punct_at(code_, i, "{")) {
      i = skip_group(code_, i, "{", "}");
      if (i < code_.size() && punct_at(code_, i, ";")) ++i;
      return i;
    }
    return skip_to_semicolon(i);
  }

  // ---- function bodies ----------------------------------------------------

  void scan_body(std::size_t begin, std::size_t end, FunctionDef& fn) {
    for (std::size_t i = begin; i < end && i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (t.kind != TokenKind::identifier) continue;
      if (t.text == "new") {
        if (i > 0 && ident_at(code_, i - 1, "operator")) continue;
        fn.evidence.push_back({EvidenceKind::naked_new, t.line, "new"});
        continue;
      }
      if (t.text == "throw") {
        fn.evidence.push_back({EvidenceKind::throw_stmt, t.line, "throw"});
        continue;
      }
      if (t.text == "std" && punct_at(code_, i + 1, "::") &&
          ident_at(code_, i + 2, "function")) {
        fn.evidence.push_back(
            {EvidenceKind::function_construct, t.line, "std::function"});
        continue;
      }
      if (is_io_object(t.text)) {
        fn.evidence.push_back({EvidenceKind::io_call, t.line, t.text});
        continue;
      }
      if (is_blocking_guard(t.text)) {
        fn.evidence.push_back({EvidenceKind::blocking_call, t.line, t.text});
        continue;
      }
      if (is_rng_type_name(t.text) || t.text == "random_device") {
        // Construction (or any other mention) of an RNG type: the body
        // owns a randomness source. Drawing from one is caught below.
        fn.evidence.push_back({EvidenceKind::rng_call, t.line, t.text});
        continue;
      }
      if (!punct_at(code_, i + 1, "(")) {
        // Bare identifier followed by an assigning operator: a write
        // candidate for the global_mut effect (locals filter out when the
        // engine intersects with the global inventory). The tokenizer
        // splits compound operators, so `x += v` is `x` `+` `=` and
        // `x++` is `x` `+` `+`; plain `=` must not match `==`.
        const bool bare = i == 0 || !(code_[i - 1].punct_is(".") ||
                                      code_[i - 1].punct_is("->") ||
                                      code_[i - 1].punct_is("::"));
        if (bare && i + 1 < code_.size()) {
          const bool plain_assign =
              punct_at(code_, i + 1, "=") && !punct_at(code_, i + 2, "=");
          const bool compound =
              code_[i + 1].kind == TokenKind::punct &&
              is_compoundable_op(code_[i + 1].text) &&
              punct_at(code_, i + 2, "=");
          const bool incr =
              (punct_at(code_, i + 1, "+") && punct_at(code_, i + 2, "+")) ||
              (punct_at(code_, i + 1, "-") && punct_at(code_, i + 2, "-"));
          if (plain_assign || compound || incr) {
            fn.writes.push_back({t.text, t.line});
          }
        }
        continue;
      }
      if (is_control_keyword(t.text)) continue;
      // Local statics inside bodies are found by the keyword, not calls.
      if (t.text == "static") continue;
      CallSite call;
      call.callee = t.text;
      call.line = t.line;
      if (i >= 2 && code_[i - 1].punct_is("::") &&
          code_[i - 2].kind == TokenKind::identifier) {
        std::size_t back = i;
        std::string qual;
        while (back >= 2 && code_[back - 1].punct_is("::") &&
               code_[back - 2].kind == TokenKind::identifier) {
          qual = qual.empty() ? code_[back - 2].text
                              : code_[back - 2].text + "::" + qual;
          back -= 2;
        }
        call.qualifier = qual;
      } else if (i >= 1 &&
                 (code_[i - 1].punct_is(".") || code_[i - 1].punct_is("->"))) {
        call.qualifier = "<member>";
      }
      if (is_alloc_call(call.callee)) {
        fn.evidence.push_back({EvidenceKind::alloc_call, t.line, call.callee});
      } else if (is_growth_call(call.callee) && call.qualifier == "<member>") {
        fn.evidence.push_back(
            {EvidenceKind::container_growth, t.line, call.callee});
      } else if (is_clock_call(call.callee) ||
                 (call.callee == "now" && call.qualifier.ends_with("_clock"))) {
        // Wall-clock reads only. Simulator::now() is virtual time and
        // arrives as a <member> call, so it never matches the _clock form.
        fn.evidence.push_back({EvidenceKind::clock_call, t.line, call.callee});
      } else if (is_rng_draw_call(call.callee) &&
                 call.qualifier == "<member>") {
        fn.evidence.push_back({EvidenceKind::rng_call, t.line, call.callee});
      } else if (is_io_call(call.callee)) {
        fn.evidence.push_back({EvidenceKind::io_call, t.line, call.callee});
      } else if (is_blocking_call(call.callee) &&
                 (call.qualifier == "<member>" ||
                  call.qualifier.ends_with("this_thread"))) {
        fn.evidence.push_back(
            {EvidenceKind::blocking_call, t.line, call.callee});
      }
      fn.calls.push_back(std::move(call));
    }
    scan_local_statics(begin, end, fn);
    scan_local_rng(begin, end);
  }

  void scan_local_statics(std::size_t begin, std::size_t end,
                          FunctionDef& fn) {
    for (std::size_t i = begin; i < end && i < code_.size(); ++i) {
      if (!ident_at(code_, i, "static")) continue;
      if (ident_at(code_, i + 1, "constexpr") ||
          ident_at(code_, i + 1, "assert") || ident_at(code_, i + 1, "cast")) {
        continue;
      }
      // Find the declared name: last identifier before `=`/`{`/`(`/`;`.
      std::string name;
      std::size_t name_idx = 0;
      std::size_t j = i + 1;
      bool is_const = false;
      bool is_constexpr = false;
      while (j < end && !punct_at(code_, j, ";") && !punct_at(code_, j, "=") &&
             !punct_at(code_, j, "{") && !punct_at(code_, j, "(")) {
        if (ident_at(code_, j, "const") || ident_at(code_, j, "constexpr")) {
          is_const = true;
          if (ident_at(code_, j, "constexpr")) is_constexpr = true;
        }
        if (code_[j].kind == TokenKind::identifier) {
          name = code_[j].text;
          name_idx = j;
        }
        if (punct_at(code_, j, "<")) {
          j = skip_angles(code_, j);
          continue;
        }
        ++j;
      }
      if (name.empty()) continue;
      if (!is_constexpr) {
        // `static const` locals are recorded here (a const pointer cache
        // still aliases a live object — sim_escape's concern) even though
        // the mutable-global inventory below excludes them.
        StaticDecl decl;
        decl.name = name;
        decl.qualified = fn.qualified + "::" + name;
        decl.type_text = type_text(i + 1, j, name_idx);
        decl.file = index_;
        decl.line = code_[i].line;
        decl.is_local_static = true;
        decl.is_const = is_const;
        static_decls_.push_back(std::move(decl));
      }
      if (is_const) continue;
      fn.evidence.push_back(
          {EvidenceKind::global_write, code_[i].line, name});
      globals_.push_back({name, fn.qualified + "::" + name, index_,
                          code_[i].line, /*local=*/true});
    }
  }

  void scan_local_rng(std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end && i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (t.kind != TokenKind::identifier || !is_rng_type_name(t.text)) continue;
      // `Random name{args}` / `Random name(args)` / `Random{args}` /
      // `std::mt19937 gen;`
      RngConstruction site;
      site.type_name = t.text;
      site.file = index_;
      site.line = t.line;
      std::size_t j = i + 1;
      if (j < end && code_[j].kind == TokenKind::identifier) {
        site.var_name = code_[j].text;
        ++j;
      }
      if (j < end && (punct_at(code_, j, "{") || punct_at(code_, j, "("))) {
        const bool brace = punct_at(code_, j, "{");
        const std::size_t close = skip_group(code_, j, brace ? "{" : "(",
                                             brace ? "}" : ")");
        site.args.assign(code_.begin() + static_cast<std::ptrdiff_t>(j) + 1,
                         code_.begin() + static_cast<std::ptrdiff_t>(close) - 1);
        site.default_constructed = site.args.empty();
        rng_sites_.push_back(std::move(site));
      } else if (j < end && punct_at(code_, j, ";") && !site.var_name.empty()) {
        site.default_constructed = true;
        rng_sites_.push_back(std::move(site));
      }
    }
  }

  const SourceFile& f_;
  std::size_t index_;
  const std::vector<Token>& code_;
  std::vector<Scope> scopes_;
  std::vector<FunctionDef>& functions_;
  std::vector<GlobalVar>& globals_;
  std::vector<RngConstruction>& rng_sites_;
  std::vector<std::string>& rng_member_names_;
  std::vector<std::pair<std::string, RngConstruction>>& member_inits_;
  std::vector<VirtualMethod>& virtual_methods_;
  std::vector<EffectContract>& contracts_;
  std::vector<StaticDecl>& static_decls_;
  std::vector<MemberDecl>& member_decls_;
  std::vector<MemberInit>& retained_inits_;
  std::vector<std::string>& src_classes_;
  bool in_src_ = false;
};

}  // namespace

std::string_view to_string(EvidenceKind kind) {
  switch (kind) {
    case EvidenceKind::naked_new: return "naked new";
    case EvidenceKind::alloc_call: return "allocating call";
    case EvidenceKind::container_growth: return "container growth";
    case EvidenceKind::throw_stmt: return "throw";
    case EvidenceKind::function_construct: return "std::function construction";
    case EvidenceKind::clock_call: return "wall-clock read";
    case EvidenceKind::rng_call: return "RNG use";
    case EvidenceKind::io_call: return "ambient I/O";
    case EvidenceKind::blocking_call: return "blocking call";
    case EvidenceKind::global_write: return "global write";
  }
  return "?";
}

bool is_hot_path_evidence(EvidenceKind kind) {
  switch (kind) {
    case EvidenceKind::naked_new:
    case EvidenceKind::alloc_call:
    case EvidenceKind::container_growth:
    case EvidenceKind::throw_stmt:
    case EvidenceKind::function_construct:
      return true;
    default:
      return false;
  }
}

ProjectModel ProjectModel::build(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  ProjectModel model;
  std::vector<fs::path> paths;
  for (const char* subdir : {"src", "bench", "examples", "tests", "tools"}) {
    const fs::path base = root / subdir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator{base}) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      // Fixture files are deliberately broken inputs for the tool's own
      // tests; modeling them would plant findings in a clean tree.
      if (rel.starts_with("tests/lint/fixtures")) continue;
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw std::runtime_error{"cannot read " + path.string()};
    std::ostringstream text;
    text << in.rdbuf();
    model.add_file(SourceFile{fs::relative(path, root).generic_string(),
                              std::move(text).str()});
  }
  model.finalize();
  return model;
}

void ProjectModel::add_file(SourceFile file) {
  path_index_.emplace(file.path(), files_.size());
  files_.push_back(std::move(file));
}

std::optional<std::size_t> ProjectModel::file_index(
    std::string_view path) const {
  const auto it = path_index_.find(path);
  if (it == path_index_.end()) return std::nullopt;
  return it->second;
}

void ProjectModel::finalize() {
  for (std::size_t i = 0; i < files_.size(); ++i) parse_file(i);
  // Ctor-init-list entries become RNG construction sites only when the
  // member name is known (anywhere in the tree) to be RNG-typed.
  std::sort(rng_member_names_.begin(), rng_member_names_.end());
  for (auto& [member, init] : pending_member_inits_) {
    if (std::binary_search(rng_member_names_.begin(), rng_member_names_.end(),
                           member)) {
      rng_sites_.push_back(std::move(init));
    }
  }
  pending_member_inits_.clear();
  std::sort(rng_sites_.begin(), rng_sites_.end(),
            [](const RngConstruction& a, const RngConstruction& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  std::sort(src_classes_.begin(), src_classes_.end());
  src_classes_.erase(std::unique(src_classes_.begin(), src_classes_.end()),
                     src_classes_.end());
  resolve_includes();
  build_name_index();
  resolve_calls();
}

void ProjectModel::parse_file(std::size_t index) {
  FileParser parser{files_[index], index,
                    {functions_, globals_, rng_sites_, rng_member_names_,
                     pending_member_inits_, virtual_methods_, contracts_,
                     static_decls_, member_decls_, member_inits_,
                     src_classes_}};
  parser.run();
}

void ProjectModel::resolve_includes() {
  for (std::size_t from = 0; from < files_.size(); ++from) {
    const SourceFile& file = files_[from];
    const std::string dir = [&] {
      const auto pos = file.path().rfind('/');
      return pos == std::string::npos ? std::string{}
                                      : file.path().substr(0, pos + 1);
    }();
    for (const Token& t : file.tokens()) {
      if (t.kind != TokenKind::pp_directive) continue;
      const auto inc_pos = t.text.find("include");
      if (inc_pos == std::string::npos) continue;
      const auto open = t.text.find('"', inc_pos);
      if (open == std::string::npos) continue;
      const auto close = t.text.find('"', open + 1);
      if (close == std::string::npos) continue;
      const std::string inc = t.text.substr(open + 1, close - open - 1);
      for (const std::string& candidate :
           {std::string{"src/"} + inc, dir + inc, inc}) {
        if (const auto to = file_index(candidate)) {
          includes_.push_back({from, *to, t.line});
          break;
        }
      }
    }
  }
}

void ProjectModel::build_name_index() {
  by_name_.clear();
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    by_name_[functions_[i].name].push_back(i);
  }
}

std::vector<std::size_t> ProjectModel::resolve_call(
    std::size_t caller, const CallSite& call) const {
  (void)caller;  // resolution is context-free today; the seam cut is not
  std::vector<std::size_t> out;
  const auto it = by_name_.find(call.callee);
  if (it == by_name_.end()) return out;
  if (!call.qualifier.empty() && call.qualifier != "<member>") {
    // Qualified: keep candidates whose enclosing class matches, or
    // whose qualified name contains the qualifier chain (namespace-
    // qualified free functions). A qualifier matching no project
    // symbol (std::, external libs) resolves to nothing rather than
    // everything.
    const std::string cls = last_component(call.qualifier);
    const std::string needle = call.qualifier + "::" + call.callee;
    for (std::size_t cand : it->second) {
      if (functions_[cand].class_name == cls ||
          functions_[cand].qualified.find(needle) != std::string::npos) {
        out.push_back(cand);
      }
    }
    return out;
  }
  out = it->second;
  return out;
}

void ProjectModel::resolve_calls() {
  call_edges_.assign(functions_.size(), {});
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    std::set<std::size_t> targets;
    for (const CallSite& call : functions_[i].calls) {
      for (std::size_t cand : resolve_call(i, call)) targets.insert(cand);
    }
    call_edges_[i].assign(targets.begin(), targets.end());
  }
}

std::string ProjectModel::layer_of(std::string_view path) {
  if (path.starts_with("src/")) {
    const auto rest = path.substr(4);
    const auto slash = rest.find('/');
    if (slash != std::string_view::npos) return std::string{rest.substr(0, slash)};
    return "";  // a file directly under src/ belongs to no layer
  }
  const auto slash = path.find('/');
  if (slash == std::string_view::npos) return "";
  const std::string top{path.substr(0, slash)};
  if (top == "bench" || top == "tests" || top == "examples" || top == "tools") {
    return top;
  }
  return "";
}

bool ProjectModel::is_interface_header(std::string_view to) {
  // The sanctioned observability interfaces: any src/ layer may include
  // these (and only these) from above its station. auditor.h and the
  // telemetry probe headers depend only on sim/ and stats/ themselves, so
  // the file-level graph stays acyclic. See docs/static-analysis.md.
  return to == "src/audit/auditor.h" || to == "src/telemetry/hub.h" ||
         to == "src/telemetry/flight_recorder.h" ||
         to == "src/telemetry/metric.h" || to == "src/telemetry/registry.h" ||
         to == "src/telemetry/span.h" || to == "src/telemetry/timeseries.h";
}

std::string ProjectModel::layer_graph_dot() const {
  // Aggregate file edges by (from-layer, to-layer); an aggregate edge is
  // dashed when every contributing include targets an interface header.
  std::map<std::pair<std::string, std::string>, std::pair<int, bool>> edges;
  std::set<std::string> layers;
  for (const IncludeEdge& e : includes_) {
    const std::string from = layer_of(files_[e.from].path());
    const std::string to = layer_of(files_[e.to].path());
    if (from.empty() || to.empty() || from == to) continue;
    layers.insert(from);
    layers.insert(to);
    auto& [count, all_interface] = edges[{from, to}];
    if (count == 0) all_interface = true;
    ++count;
    all_interface = all_interface && is_interface_header(files_[e.to].path());
  }
  std::ostringstream out;
  out << "digraph halfback_layers {\n"
      << "  rankdir=BT;\n"
      << "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const std::string& layer : layers) {
    out << "  \"" << layer << "\";\n";
  }
  for (const auto& [key, val] : edges) {
    out << "  \"" << key.first << "\" -> \"" << key.second << "\" [label=\""
        << val.first << "\"";
    if (val.second) out << ", style=dashed";
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace halfback::lint
