// The cross-translation-unit project model behind halfback-analyze.
//
// halfback-lint (rules.h) sees one file at a time; the whole-program
// contracts — layering, transitive hot-path purity, shard safety,
// seed-derived randomness — need a view of the tree. The ProjectModel is
// that view: every source file tokenized once, plus
//
//   * an include graph (file -> file edges, resolved against the tree),
//   * a symbol table of function definitions with per-body evidence
//     (allocations, throws, std::function construction, container growth),
//   * a best-effort call graph (callee names resolved to definitions, with
//     class-qualifier filtering),
//   * an inventory of namespace-scope variables and function-local statics,
//   * every RNG construction site with its argument tokens,
//   * every member function declared virtual (the hot-path rule's
//     virtual-dispatch check resolves member calls against this table).
//
// "Best effort" is a design point, not an apology: the model is built by
// the same zero-dependency tokenizer as the linter (no libclang), so calls
// through std::function / function pointers are invisible and overload sets
// collapse to name matches. The rules on top (analysis.h) are written so
// that blindness makes them miss findings, never invent them.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "source_file.h"

namespace halfback::lint {

/// One resolved `#include "..."` edge between files in the model.
struct IncludeEdge {
  std::size_t from = 0;  ///< index into files()
  std::size_t to = 0;    ///< index into files()
  int line = 0;
};

/// What a function body does that the hot-path contract cares about.
enum class EvidenceKind {
  naked_new,           ///< `new` expression
  alloc_call,          ///< make_unique/make_shared/malloc/...
  container_growth,    ///< member .push_back/.insert/.resize/...
  throw_stmt,          ///< throw expression
  function_construct,  ///< std::function mentioned in a body
};

std::string_view to_string(EvidenceKind kind);

struct Evidence {
  EvidenceKind kind;
  int line = 0;
  std::string detail;  ///< the offending token, e.g. "make_unique"
};

/// A member function declared `virtual` (or `override`, which implies a
/// virtual base) — declarations count, bodies are not required, so pure
/// virtuals are inventoried too. Input to the hot-path virtual-dispatch
/// check: a member call whose name appears here may dispatch virtually.
struct VirtualMethod {
  std::string name;        ///< unqualified, e.g. "on_packet"
  std::string class_name;  ///< declaring class, best effort
  std::size_t file = 0;    ///< index into files()
  int line = 0;
};

/// A call site inside a function body.
struct CallSite {
  std::string callee;     ///< unqualified name, e.g. "enqueue"
  std::string qualifier;  ///< "Link", "std", "<member>" (obj./ptr->), or ""
  int line = 0;
};

/// One function definition (a body was seen, not just a declaration).
struct FunctionDef {
  std::string name;        ///< unqualified, e.g. "fire"
  std::string qualified;   ///< best effort, e.g. "net::Link::send"
  std::string class_name;  ///< enclosing (or declarator-qualifying) class
  std::size_t file = 0;    ///< index into files()
  int line = 0;
  bool is_fire_override = false;
  std::vector<CallSite> calls;
  std::vector<Evidence> evidence;
};

/// Mutable state with static storage duration (shard-safety rule input).
struct GlobalVar {
  std::string name;
  std::string qualified;  ///< namespace-qualified, best effort
  std::size_t file = 0;
  int line = 0;
  /// true: `static` local inside a function (includes singleton accessors);
  /// false: namespace-scope variable or static data member.
  bool is_local_static = false;
};

/// A construction of an RNG object (sim::Random or a <random> engine).
struct RngConstruction {
  std::string type_name;  ///< "Random", "mt19937_64", ... ("" for members
                          ///< initialized in a ctor-init-list)
  std::string var_name;   ///< the variable/member being constructed, if any
  std::size_t file = 0;
  int line = 0;
  bool default_constructed = false;
  std::vector<Token> args;  ///< constructor argument tokens
};

class ProjectModel {
 public:
  /// Build the model for a tree: every *.h / *.cpp under root/{src,bench,
  /// examples,tests,tools}, except tests/lint/fixtures (deliberately broken
  /// inputs). Throws std::runtime_error when a file cannot be read.
  static ProjectModel build(const std::filesystem::path& root);

  /// In-memory construction for tests: add files, then finalize().
  void add_file(SourceFile file);

  /// Resolve include edges, the call graph, and the RNG member-init sites.
  /// Must be called once, after the last add_file().
  void finalize();

  const std::vector<SourceFile>& files() const { return files_; }
  const SourceFile& file(std::size_t i) const { return files_[i]; }
  std::optional<std::size_t> file_index(std::string_view path) const;

  const std::vector<IncludeEdge>& includes() const { return includes_; }
  const std::vector<FunctionDef>& functions() const { return functions_; }
  const std::vector<GlobalVar>& globals() const { return globals_; }
  const std::vector<RngConstruction>& rng_sites() const { return rng_sites_; }
  const std::vector<VirtualMethod>& virtual_methods() const {
    return virtual_methods_;
  }

  /// Call graph: call_edges()[f] are indices into functions() that the
  /// body of functions()[f] may call (name-resolved, qualifier-filtered).
  const std::vector<std::vector<std::size_t>>& call_edges() const {
    return call_edges_;
  }

  /// The layer a path belongs to: "sim", "net", ... for src/<dir>/...;
  /// "bench", "tests", "examples", "tools" for the top-level dirs; "" when
  /// the path fits no layer.
  static std::string layer_of(std::string_view path);

  /// Graphviz digraph of the layer-level include graph (edges aggregated
  /// from file-level edges, labeled with counts; the sanctioned
  /// observability-interface edges are drawn dashed).
  std::string layer_graph_dot() const;

  /// True when `to` (a repo-relative header path) is one of the sanctioned
  /// observability interface headers that any src/ layer may include (the
  /// audit hook and the telemetry probe surface; see docs/static-analysis.md).
  static bool is_interface_header(std::string_view to);

 private:
  void parse_file(std::size_t index);
  void resolve_includes();
  void resolve_calls();

  std::vector<SourceFile> files_;
  std::map<std::string, std::size_t, std::less<>> path_index_;
  std::vector<IncludeEdge> includes_;
  std::vector<FunctionDef> functions_;
  std::vector<GlobalVar> globals_;
  std::vector<RngConstruction> rng_sites_;
  std::vector<VirtualMethod> virtual_methods_;
  std::vector<std::vector<std::size_t>> call_edges_;
  /// Ctor-init-list entries (member name -> construction), kept until
  /// finalize() knows which member names are RNG-typed.
  std::vector<std::pair<std::string, RngConstruction>> pending_member_inits_;
  std::vector<std::string> rng_member_names_;
};

}  // namespace halfback::lint
