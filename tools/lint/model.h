// The cross-translation-unit project model behind halfback-analyze.
//
// halfback-lint (rules.h) sees one file at a time; the whole-program
// contracts — layering, transitive hot-path purity, shard safety,
// seed-derived randomness — need a view of the tree. The ProjectModel is
// that view: every source file tokenized once, plus
//
//   * an include graph (file -> file edges, resolved against the tree),
//   * a symbol table of function definitions with per-body evidence
//     (allocations, throws, std::function construction, container growth),
//   * a best-effort call graph (callee names resolved to definitions, with
//     class-qualifier filtering),
//   * an inventory of namespace-scope variables and function-local statics,
//   * every RNG construction site with its argument tokens,
//   * every member function declared virtual (the hot-path rule's
//     virtual-dispatch check resolves member calls against this table).
//
// "Best effort" is a design point, not an apology: the model is built by
// the same zero-dependency tokenizer as the linter (no libclang), so calls
// through std::function / function pointers are invisible and overload sets
// collapse to name matches. The rules on top (analysis.h) are written so
// that blindness makes them miss findings, never invent them.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "source_file.h"

namespace halfback::lint {

/// One resolved `#include "..."` edge between files in the model.
struct IncludeEdge {
  std::size_t from = 0;  ///< index into files()
  std::size_t to = 0;    ///< index into files()
  int line = 0;
};

/// What a function body does that the hot-path and effect contracts care
/// about. The first five kinds are the original hot-path evidence; the
/// rest are leaf witnesses for the effect-inference engine (effects.h).
enum class EvidenceKind {
  naked_new,           ///< `new` expression
  alloc_call,          ///< make_unique/make_shared/malloc/...
  container_growth,    ///< member .push_back/.insert/.resize/...
  throw_stmt,          ///< throw expression
  function_construct,  ///< std::function mentioned in a body
  clock_call,          ///< wall-clock read (steady_clock::now, gettimeofday)
  rng_call,            ///< RNG construction or draw (uniform/bernoulli/...)
  io_call,             ///< ambient I/O (fopen, printf, fstream, getenv)
  blocking_call,       ///< lock/join/wait/sleep or a scoped-lock guard
  global_write,        ///< mutable static declared or assigned in the body
};

std::string_view to_string(EvidenceKind kind);

/// True for the five kinds the hot-path wire contract polices (the effect
/// kinds added later must not widen that rule's findings).
bool is_hot_path_evidence(EvidenceKind kind);

struct Evidence {
  EvidenceKind kind;
  int line = 0;
  std::string detail;  ///< the offending token, e.g. "make_unique"
};

/// A member function declared `virtual` (or `override`, which implies a
/// virtual base) — declarations count, bodies are not required, so pure
/// virtuals are inventoried too. Input to the hot-path virtual-dispatch
/// check: a member call whose name appears here may dispatch virtually.
struct VirtualMethod {
  std::string name;        ///< unqualified, e.g. "on_packet"
  std::string class_name;  ///< declaring class, best effort
  std::size_t file = 0;    ///< index into files()
  int line = 0;
};

/// A call site inside a function body.
struct CallSite {
  std::string callee;     ///< unqualified name, e.g. "enqueue"
  std::string qualifier;  ///< "Link", "std", "<member>" (obj./ptr->), or ""
  int line = 0;
};

/// A bare identifier the body assigns to (`x = ...`, `x += ...`, `x++`).
/// Object- or scope-qualified writes are excluded; the effect engine
/// intersects these names with the namespace-scope global inventory to
/// derive the global_mut effect, so local shadows filter out there.
struct WriteSite {
  std::string name;
  int line = 0;
};

/// One function definition (a body was seen, not just a declaration).
struct FunctionDef {
  std::string name;        ///< unqualified, e.g. "fire"
  std::string qualified;   ///< best effort, e.g. "net::Link::send"
  std::string class_name;  ///< enclosing (or declarator-qualifying) class
  std::size_t file = 0;    ///< index into files()
  int line = 0;
  bool is_fire_override = false;
  /// How many parameters are `Simulator&` / `Simulator*`. Two or more on
  /// one signature is a cross-instance bridge (sim_escape rule).
  int simulator_params = 0;
  std::vector<CallSite> calls;
  std::vector<WriteSite> writes;
  std::vector<Evidence> evidence;
};

/// A declared HB_EFFECTS(...) contract. Contracts attach to declarations
/// as well as definitions (the macro sits between the parameter list and
/// the body/semicolon), keyed by the same qualified-name scheme as
/// FunctionDef::qualified so header contracts meet .cpp bodies.
struct EffectContract {
  std::string qualified;              ///< e.g. "halfback::net::Link::send"
  std::vector<std::string> declared;  ///< effect tokens, e.g. {"alloc","throw"}
  std::size_t file = 0;
  int line = 0;
};

/// A variable with static storage duration recorded with its declared type
/// tokens (sim_escape rule input). Unlike GlobalVar this includes `const`
/// variables — a `static const Simulator*` cache is exactly the bug the
/// escape analysis exists to catch — but still excludes `constexpr`.
struct StaticDecl {
  std::string name;
  std::string qualified;       ///< namespace-qualified, best effort
  std::string type_text;       ///< declared type tokens, space-joined
  std::size_t file = 0;
  int line = 0;
  bool is_local_static = false;
  bool is_const = false;
};

/// A data member declaration inside a class in src/ (sim_escape rule
/// input: counts Simulator-typed members, flags non-owning handles).
struct MemberDecl {
  std::string class_name;
  std::string name;
  std::string type_text;  ///< declared type tokens, space-joined
  bool is_ref_or_ptr = false;
  std::size_t file = 0;
  int line = 0;
};

/// A ctor-init-list entry `member{args...}` retained with its class
/// context (sim_escape provenance check on Simulator-typed members).
struct MemberInit {
  std::string class_name;
  std::string member;
  std::vector<Token> args;
  std::size_t file = 0;
  int line = 0;
};

/// Mutable state with static storage duration (shard-safety rule input).
struct GlobalVar {
  std::string name;
  std::string qualified;  ///< namespace-qualified, best effort
  std::size_t file = 0;
  int line = 0;
  /// true: `static` local inside a function (includes singleton accessors);
  /// false: namespace-scope variable or static data member.
  bool is_local_static = false;
};

/// A construction of an RNG object (sim::Random or a <random> engine).
struct RngConstruction {
  std::string type_name;  ///< "Random", "mt19937_64", ... ("" for members
                          ///< initialized in a ctor-init-list)
  std::string var_name;   ///< the variable/member being constructed, if any
  std::size_t file = 0;
  int line = 0;
  bool default_constructed = false;
  std::vector<Token> args;  ///< constructor argument tokens
};

class ProjectModel {
 public:
  /// Build the model for a tree: every *.h / *.cpp under root/{src,bench,
  /// examples,tests,tools}, except tests/lint/fixtures (deliberately broken
  /// inputs). Throws std::runtime_error when a file cannot be read.
  static ProjectModel build(const std::filesystem::path& root);

  /// In-memory construction for tests: add files, then finalize().
  void add_file(SourceFile file);

  /// Resolve include edges, the call graph, and the RNG member-init sites.
  /// Must be called once, after the last add_file().
  void finalize();

  const std::vector<SourceFile>& files() const { return files_; }
  const SourceFile& file(std::size_t i) const { return files_[i]; }
  std::optional<std::size_t> file_index(std::string_view path) const;

  const std::vector<IncludeEdge>& includes() const { return includes_; }
  const std::vector<FunctionDef>& functions() const { return functions_; }
  const std::vector<GlobalVar>& globals() const { return globals_; }
  const std::vector<RngConstruction>& rng_sites() const { return rng_sites_; }
  const std::vector<VirtualMethod>& virtual_methods() const {
    return virtual_methods_;
  }
  const std::vector<EffectContract>& contracts() const { return contracts_; }
  const std::vector<StaticDecl>& static_decls() const { return static_decls_; }
  const std::vector<MemberDecl>& member_decls() const { return member_decls_; }
  const std::vector<MemberInit>& member_inits() const { return member_inits_; }

  /// Names of classes/structs defined under src/ (sim_escape uses this to
  /// decide whether a static's type points into the simulation).
  const std::vector<std::string>& src_classes() const { return src_classes_; }

  /// Call graph: call_edges()[f] are indices into functions() that the
  /// body of functions()[f] may call (name-resolved, qualifier-filtered).
  const std::vector<std::vector<std::size_t>>& call_edges() const {
    return call_edges_;
  }

  /// Resolve one call site of functions()[caller] to candidate definitions
  /// (the same name-and-qualifier matching that builds call_edges, exposed
  /// per-callsite so the effect engine can cut propagation at sanctioned
  /// seams without losing the rest of the body's edges).
  std::vector<std::size_t> resolve_call(std::size_t caller,
                                        const CallSite& call) const;

  /// The layer a path belongs to: "sim", "net", ... for src/<dir>/...;
  /// "bench", "tests", "examples", "tools" for the top-level dirs; "" when
  /// the path fits no layer.
  static std::string layer_of(std::string_view path);

  /// Graphviz digraph of the layer-level include graph (edges aggregated
  /// from file-level edges, labeled with counts; the sanctioned
  /// observability-interface edges are drawn dashed).
  std::string layer_graph_dot() const;

  /// True when `to` (a repo-relative header path) is one of the sanctioned
  /// observability interface headers that any src/ layer may include (the
  /// audit hook and the telemetry probe surface; see docs/static-analysis.md).
  static bool is_interface_header(std::string_view to);

 private:
  void parse_file(std::size_t index);
  void resolve_includes();
  void resolve_calls();
  void build_name_index();

  std::vector<SourceFile> files_;
  std::map<std::string, std::size_t, std::less<>> path_index_;
  std::vector<IncludeEdge> includes_;
  std::vector<FunctionDef> functions_;
  std::vector<GlobalVar> globals_;
  std::vector<RngConstruction> rng_sites_;
  std::vector<VirtualMethod> virtual_methods_;
  std::vector<EffectContract> contracts_;
  std::vector<StaticDecl> static_decls_;
  std::vector<MemberDecl> member_decls_;
  std::vector<MemberInit> member_inits_;
  std::vector<std::string> src_classes_;
  std::vector<std::vector<std::size_t>> call_edges_;
  /// Definitions by unqualified name (built in finalize(), backs both
  /// resolve_calls() and the public per-callsite resolve_call()).
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_name_;
  /// Ctor-init-list entries (member name -> construction), kept until
  /// finalize() knows which member names are RNG-typed.
  std::vector<std::pair<std::string, RngConstruction>> pending_member_inits_;
  std::vector<std::string> rng_member_names_;
};

}  // namespace halfback::lint
