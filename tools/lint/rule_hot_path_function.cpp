// Rule "hot-path-std-function": files annotated "// lint: hot-path" are the
// per-event/per-packet core whose contract (established by the intrusive
// event & packet-pool refactor) is that steady state allocates nothing. A
// std::function is a type-erased heap allocation waiting to happen, so in
// annotated files each mention must justify why it is bind-once or
// recycled: "// lint: function-ok(reason)".
#include "rules_internal.h"

namespace halfback::lint {
namespace {

using scan::ident_at;
using scan::punct_at;

class HotPathFunctionRule final : public Rule {
 public:
  std::string_view id() const override { return "hot-path-std-function"; }
  std::string_view description() const override {
    return "no std::function in '// lint: hot-path' files without a "
           "'// lint: function-ok(reason)' justification";
  }
  std::string_view suppression_tag() const override { return "function-ok"; }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.path().starts_with("src/")) return;
    if (!file.annotated("hot-path")) return;
    const auto& code = file.code();
    for (std::size_t i = 0; i + 2 < code.size(); ++i) {
      if (ident_at(code, i, "std") && punct_at(code, i + 1, "::") &&
          ident_at(code, i + 2, "function")) {
        report(file, code[i].line,
               "std::function in a hot-path file — use an intrusive Event / "
               "Timer, or justify a bind-once use with "
               "'// lint: function-ok(reason)'",
               out);
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_hot_path_function_rule() {
  return std::make_unique<HotPathFunctionRule>();
}

}  // namespace halfback::lint
