// Rule "naked-new-delete": ownership in src/ is expressed with
// std::unique_ptr / containers / the slab pools; a naked `new` or `delete`
// bypasses all of them and is how leaks and double-frees enter a codebase.
// `= delete` (deleted functions) and `operator new/delete` declarations are
// not flagged. Deliberate placement allocation justifies itself with
// "// lint: new-ok(reason)".
#include "rules_internal.h"

namespace halfback::lint {
namespace {

using scan::ident_at;
using scan::punct_at;

class NakedNewDeleteRule final : public Rule {
 public:
  std::string_view id() const override { return "naked-new-delete"; }
  std::string_view description() const override {
    return "no naked new/delete in src/ — use std::make_unique, containers, "
           "or the pools";
  }
  std::string_view suppression_tag() const override { return "new-ok"; }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.path().starts_with("src/")) return;
    const auto& code = file.code();
    for (std::size_t i = 0; i < code.size(); ++i) {
      const bool is_new = ident_at(code, i, "new");
      const bool is_delete = ident_at(code, i, "delete");
      if (!is_new && !is_delete) continue;
      if (i > 0 && ident_at(code, i - 1, "operator")) continue;
      if (is_delete && i > 0 && punct_at(code, i - 1, "=")) continue;
      report(file, code[i].line,
             std::string{"naked '"} + (is_new ? "new" : "delete") +
                 "' — express ownership with std::make_unique, a container, "
                 "or a pool",
             out);
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_naked_new_delete_rule() {
  return std::make_unique<NakedNewDeleteRule>();
}

}  // namespace halfback::lint
