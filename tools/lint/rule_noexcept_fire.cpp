// Rule "noexcept-fire": Event::fire overrides run inside the event loop's
// dispatch, where an escaping exception unwinds through the simulator and
// leaves queues, pools, and shadow state inconsistent. Overrides must be
// declared noexcept; the ones that intentionally forward user-supplied
// callbacks (which may throw in tests) say so with
// "// lint: fire-may-throw(reason)".
#include "rules_internal.h"

namespace halfback::lint {
namespace {

using scan::ident_at;
using scan::punct_at;

class NoexceptFireRule final : public Rule {
 public:
  std::string_view id() const override { return "noexcept-fire"; }
  std::string_view description() const override {
    return "Event::fire overrides are noexcept or carry "
           "'// lint: fire-may-throw(reason)'";
  }
  std::string_view suppression_tag() const override { return "fire-may-throw"; }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.path().starts_with("src/")) return;
    const auto& code = file.code();
    for (std::size_t i = 0; i + 2 < code.size(); ++i) {
      if (!ident_at(code, i, "fire") || !punct_at(code, i + 1, "(") ||
          !punct_at(code, i + 2, ")")) {
        continue;
      }
      // Scan the declarator suffix up to the body / declaration end. Only
      // overrides are held to the contract: the pure-virtual base
      // declaration documents the interface, not an implementation.
      bool has_override = false;
      bool has_noexcept = false;
      for (std::size_t j = i + 3; j < code.size(); ++j) {
        if (punct_at(code, j, "{") || punct_at(code, j, ";") ||
            punct_at(code, j, "=")) {
          break;
        }
        has_override = has_override || ident_at(code, j, "override");
        has_noexcept = has_noexcept || ident_at(code, j, "noexcept");
      }
      if (has_override && !has_noexcept) {
        report(file, code[i].line,
               "fire() override is not noexcept — an exception escaping event "
               "dispatch corrupts simulator state; mark it noexcept or "
               "justify with '// lint: fire-may-throw(reason)'",
               out);
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_noexcept_fire_rule() {
  return std::make_unique<NoexceptFireRule>();
}

}  // namespace halfback::lint
