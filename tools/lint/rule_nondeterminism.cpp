// Rule "nondeterminism": bans wall-clock and ambient-randomness sources in
// src/. Every run must be a pure function of its seed, so the only
// randomness source is sim::Random (which is itself the one exempt file)
// and the only clock is sim::Simulator::now().
#include <array>
#include <string_view>

#include "rules_internal.h"

namespace halfback::lint {
namespace {

using scan::punct_at;

// Functions whose *call* is banned: flagged as `name(`, unqualified or
// std-qualified, but not as a member call (`obj.time(...)` is somebody's
// accessor, not <ctime>).
constexpr std::array<std::string_view, 10> kBannedCalls{
    "rand",   "srand",         "rand_r", "drand48",      "lrand48",
    "random", "gettimeofday",  "time",   "clock_gettime", "clock",
};

// Types whose very mention is banned, however qualified.
constexpr std::array<std::string_view, 4> kBannedTypes{
    "random_device", "system_clock", "steady_clock", "high_resolution_clock"};

class NondeterminismRule final : public Rule {
 public:
  std::string_view id() const override { return "nondeterminism"; }
  std::string_view description() const override {
    return "no wall clocks or ambient randomness in src/ (use sim::Random / "
           "Simulator::now)";
  }
  std::string_view suppression_tag() const override { return "nondet-ok"; }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.path().starts_with("src/")) return;
    if (file.path() == "src/sim/random.h" || file.path() == "src/sim/random.cpp")
      return;  // the one place std <random> engines may live

    const auto& code = file.code();
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i].kind != TokenKind::identifier) continue;
      const std::string_view name = code[i].text;

      for (std::string_view banned : kBannedTypes) {
        if (name == banned) {
          report(file, code[i].line,
                 "nondeterministic source '" + code[i].text +
                     "' — derive randomness from sim::Random and time from "
                     "Simulator::now()",
                 out);
        }
      }

      for (std::string_view banned : kBannedCalls) {
        if (name != banned || !punct_at(code, i + 1, "(")) continue;
        if (member_access_before(code, i)) continue;     // obj.time(...)
        if (non_std_qualified_before(code, i)) continue; // other::time(...)
        if (declaration_before(code, i)) continue;       // Random& random()
        report(file, code[i].line,
               "call to nondeterministic '" + code[i].text +
                   "()' — a run must be a pure function of its seed",
               out);
      }
    }
  }

 private:
  static bool member_access_before(const std::vector<Token>& code, std::size_t i) {
    return i > 0 && (punct_at(code, i - 1, ".") || punct_at(code, i - 1, "->"));
  }

  // `Random& random() { ... }` is a declaration of somebody's accessor, not
  // a call to ::random(). A declaration is preceded by its return type — an
  // identifier, `&`, `*`, or a closing `>` — whereas a call site is preceded
  // by an operator, `(`, `,`, or a statement keyword like `return`.
  static bool declaration_before(const std::vector<Token>& code, std::size_t i) {
    if (i == 0) return true;  // file starts with `name(` — not a call
    const Token& prev = code[i - 1];
    if (prev.kind == TokenKind::punct)
      return prev.text == "&" || prev.text == "*" || prev.text == ">";
    if (prev.kind != TokenKind::identifier) return false;
    constexpr std::array<std::string_view, 8> kStatementKeywords{
        "return", "co_return", "co_await", "co_yield",
        "throw",  "case",      "else",     "do"};
    for (std::string_view kw : kStatementKeywords) {
      if (prev.text == kw) return false;
    }
    return true;  // `std::uint64_t time(...)`, `virtual double random()`, ...
  }

  static bool non_std_qualified_before(const std::vector<Token>& code,
                                       std::size_t i) {
    if (i == 0 || !punct_at(code, i - 1, "::")) return false;
    return !(i >= 2 && scan::ident_at(code, i - 2, "std"));
  }
};

}  // namespace

std::unique_ptr<Rule> make_nondeterminism_rule() {
  return std::make_unique<NondeterminismRule>();
}

}  // namespace halfback::lint
