// Rule "pragma-once": every header in src/ must start its preprocessor
// life with `#pragma once`. The header self-containment harness compiles
// each header twice in one TU, so a missing guard is also a build failure —
// this rule reports it with a better message and without a compiler.
#include <algorithm>
#include <cctype>

#include "rules_internal.h"

namespace halfback::lint {
namespace {

/// Directive text with whitespace runs collapsed: "#  pragma   once" ->
/// "#pragma once".
std::string normalized(std::string_view directive) {
  std::string out;
  bool pending_space = false;
  for (char c : directive) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}

class PragmaOnceRule final : public Rule {
 public:
  std::string_view id() const override { return "pragma-once"; }
  std::string_view description() const override {
    return "every header in src/ carries #pragma once";
  }
  std::string_view suppression_tag() const override { return ""; }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.path().starts_with("src/") || !file.is_header()) return;
    const auto& tokens = file.tokens();
    const bool found = std::any_of(tokens.begin(), tokens.end(), [](const Token& t) {
      return t.kind == TokenKind::pp_directive &&
             normalized(t.text).starts_with("#pragma once");
    });
    if (!found) {
      report(file, 1, "header is missing '#pragma once'", out);
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_pragma_once_rule() {
  return std::make_unique<PragmaOnceRule>();
}

}  // namespace halfback::lint
