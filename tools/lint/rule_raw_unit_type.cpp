// Rule "raw-unit-type": a declaration like `double rtt_ms` or
// `std::uint64_t buffer_bytes` in a public header is a unit bug waiting to
// happen — the unit lives only in the name, so nothing stops a caller from
// assigning seconds to it. Interfaces must carry the unit in the type:
// sim::Time, sim::DataRate, or sim::Bytes. Doubles that are genuinely
// unit-less at the statistics edge justify themselves with
// "// lint: unit-ok(reason)".
#include <array>
#include <string_view>

#include "rules_internal.h"

namespace halfback::lint {
namespace {

using scan::ident_at;
using scan::punct_at;

// Suffixes that name a unit. A trailing private-member underscore is
// allowed after the suffix (`total_bytes_`).
constexpr std::array<std::string_view, 11> kUnitSuffixes{
    "_s", "_ms", "_us", "_ns", "_bps", "_kbps", "_mbps", "_gbps",
    "_bytes", "_kb", "_mb"};

bool has_unit_suffix(std::string_view name) {
  if (name.ends_with("_")) name.remove_suffix(1);
  for (std::string_view suffix : kUnitSuffixes) {
    if (name.size() > suffix.size() && name.ends_with(suffix)) return true;
  }
  return false;
}

const char* strong_type_for(std::string_view name) {
  if (name.ends_with("_")) name.remove_suffix(1);
  if (name.ends_with("_bytes") || name.ends_with("_kb") || name.ends_with("_mb"))
    return "sim::Bytes";
  if (name.ends_with("_bps") || name.ends_with("_kbps") ||
      name.ends_with("_mbps") || name.ends_with("_gbps"))
    return "sim::DataRate";
  return "sim::Time";
}

class RawUnitTypeRule final : public Rule {
 public:
  std::string_view id() const override { return "raw-unit-type"; }
  std::string_view description() const override {
    return "no raw double/uint64_t parameters or members with unit-suffixed "
           "names in public headers — use sim::Time / sim::DataRate / "
           "sim::Bytes";
  }
  std::string_view suppression_tag() const override { return "unit-ok"; }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.path().starts_with("src/") || !file.is_header()) return;
    const auto& code = file.code();

    for (std::size_t i = 0; i < code.size(); ++i) {
      std::size_t name_index = 0;
      if (raw_scalar_type_at(code, i, name_index)) {
        const Token& name = code[name_index];
        if (name.kind != TokenKind::identifier || !has_unit_suffix(name.text))
          continue;
        // Require a declaration context: member/param/local, not a call.
        if (!(punct_at(code, name_index + 1, ";") ||
              punct_at(code, name_index + 1, "=") ||
              punct_at(code, name_index + 1, "{") ||
              punct_at(code, name_index + 1, ",") ||
              punct_at(code, name_index + 1, ")"))) {
          continue;
        }
        report(file, name.line,
               "'" + name.text + "' carries its unit in the name but not the "
                   "type — declare it as " + strong_type_for(name.text) +
                   " (or justify with '// lint: unit-ok(reason)')",
               out);
      }
    }
  }

 private:
  static bool raw_scalar_name(const std::vector<Token>& code, std::size_t j) {
    return ident_at(code, j, "double") || ident_at(code, j, "float") ||
           ident_at(code, j, "uint64_t") || ident_at(code, j, "int64_t");
  }

  /// Matches `double`, `float`, `uint64_t`, `int64_t`, optionally
  /// std::-qualified, starting exactly at code[i]; on success sets
  /// `name_index` to the token after the type. A bare type name preceded by
  /// `::` is never a match start (it was either already matched through its
  /// `std` qualifier, or it is some other scope's type).
  static bool raw_scalar_type_at(const std::vector<Token>& code, std::size_t i,
                                 std::size_t& name_index) {
    if (ident_at(code, i, "std") && punct_at(code, i + 1, "::") &&
        raw_scalar_name(code, i + 2)) {
      name_index = i + 3;
      return true;
    }
    if (raw_scalar_name(code, i) && !(i > 0 && punct_at(code, i - 1, "::"))) {
      name_index = i + 1;
      return true;
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<Rule> make_raw_unit_type_rule() {
  return std::make_unique<RawUnitTypeRule>();
}

}  // namespace halfback::lint
