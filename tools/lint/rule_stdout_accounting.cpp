// Rule "stdout-accounting": simulation code must not print results to
// stdout. Accounting leaves src/ through the telemetry exporters
// (src/telemetry/) and the stats renderers (src/stats/), whose output
// formats are deterministic and tested; an ad-hoc std::cout or printf in
// sim/net/transport/schemes code bypasses those formats and interleaves
// with bench output. Formatting into buffers (snprintf) and diagnostics to
// stderr remain fine.
#include <array>
#include <string_view>

#include "rules_internal.h"

namespace halfback::lint {
namespace {

using scan::ident_at;
using scan::punct_at;

// Calls that write to stdout, flagged as `name(` (plain or std-qualified).
// snprintf/sprintf format into buffers and are not listed; fprintf is
// handled separately so only the `fprintf(stdout, ...)` form is flagged.
constexpr std::array<std::string_view, 4> kStdoutCalls{
    "printf", "vprintf", "puts", "putchar"};

class StdoutAccountingRule final : public Rule {
 public:
  std::string_view id() const override { return "stdout-accounting"; }
  std::string_view description() const override {
    return "no stdout accounting in src/ — export through telemetry/ or "
           "stats/ renderers";
  }
  std::string_view suppression_tag() const override { return "stdout-ok"; }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.path().starts_with("src/")) return;
    // The designated reporting layers: exporters and table/plot renderers.
    if (file.path().starts_with("src/telemetry/") ||
        file.path().starts_with("src/stats/"))
      return;

    const auto& code = file.code();
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i].kind != TokenKind::identifier) continue;
      const std::string_view name = code[i].text;

      if (name == "cout" && !member_access_before(code, i)) {
        report(file, code[i].line,
               "std::cout accounting in src/ — record into a telemetry "
               "metric or return data for a stats renderer",
               out);
        continue;
      }

      if (name == "fprintf" && punct_at(code, i + 1, "(") &&
          ident_at(code, i + 2, "stdout") && !member_access_before(code, i)) {
        report(file, code[i].line,
               "fprintf(stdout, ...) accounting in src/ — export through "
               "telemetry/ or stats/ instead",
               out);
        continue;
      }

      for (std::string_view banned : kStdoutCalls) {
        if (name != banned || !punct_at(code, i + 1, "(")) continue;
        if (member_access_before(code, i)) continue;      // obj.printf(...)
        if (non_std_qualified_before(code, i)) continue;  // other::puts(...)
        report(file, code[i].line,
               "call to '" + code[i].text +
                   "()' writes to stdout from src/ — export through "
                   "telemetry/ or stats/ instead",
               out);
      }
    }
  }

 private:
  static bool member_access_before(const std::vector<Token>& code, std::size_t i) {
    return i > 0 && (punct_at(code, i - 1, ".") || punct_at(code, i - 1, "->"));
  }

  static bool non_std_qualified_before(const std::vector<Token>& code,
                                       std::size_t i) {
    if (i == 0 || !punct_at(code, i - 1, "::")) return false;
    return !(i >= 2 && ident_at(code, i - 2, "std"));
  }
};

}  // namespace

std::unique_ptr<Rule> make_stdout_accounting_rule() {
  return std::make_unique<StdoutAccountingRule>();
}

}  // namespace halfback::lint
