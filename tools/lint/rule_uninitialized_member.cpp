// Rule "uninitialized-pod-member": a scalar member without a default
// initializer in a constructor-less struct is read-before-write fuel — the
// aggregate compiles fine, somebody forgets one field in one brace-init
// site, and the simulator computes on garbage (nondeterministically, which
// is the worst kind of garbage here). Classes that declare any constructor
// or destructor are left to the sanitizers and clang-tidy (the ctor
// presumably initializes; proving it needs real semantic analysis).
#include <array>
#include <string>
#include <string_view>

#include "rules_internal.h"

namespace halfback::lint {
namespace {

using scan::ident_at;
using scan::punct_at;
using scan::skip_group;

constexpr std::array<std::string_view, 15> kScalarTypes{
    "bool",     "char",     "short",    "int",      "long",
    "unsigned", "signed",   "float",    "double",   "size_t",
    "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "int64_t"};

bool is_scalar_type_name(std::string_view t) {
  for (std::string_view s : kScalarTypes) {
    if (t == s) return true;
  }
  return t.starts_with("int") && t.ends_with("_t");  // int8_t, int32_t, ...
}

class UninitializedMemberRule final : public Rule {
 public:
  std::string_view id() const override { return "uninitialized-pod-member"; }
  std::string_view description() const override {
    return "scalar members of constructor-less structs must have default "
           "initializers";
  }
  std::string_view suppression_tag() const override { return "init-ok"; }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.path().starts_with("src/")) return;
    const auto& code = file.code();
    for (std::size_t i = 0; i + 1 < code.size(); ++i) {
      if (!(ident_at(code, i, "struct") || ident_at(code, i, "class"))) continue;
      if (i > 0 && ident_at(code, i - 1, "enum")) continue;  // enum class
      // `struct Name ... {` — skip forward declarations and elaborated
      // type uses (`struct Name x;`).
      if (code[i + 1].kind != TokenKind::identifier) continue;
      const std::string class_name = code[i + 1].text;
      std::size_t j = i + 2;
      while (j < code.size() && !punct_at(code, j, "{") && !punct_at(code, j, ";") &&
             !punct_at(code, j, "(") && !punct_at(code, j, "=")) {
        ++j;
      }
      if (!punct_at(code, j, "{")) continue;
      check_class_body(file, code, class_name, j, out);
    }
  }

 private:
  /// True when the class body declares any constructor or destructor:
  /// `ClassName (` at member-declaration depth (leading specifiers like
  /// `explicit`/`constexpr` don't matter — we look at the name token, not
  /// the statement start).
  static bool has_user_ctor(const std::vector<Token>& code,
                            const std::string& class_name, std::size_t open_brace,
                            std::size_t past) {
    int depth = 0;
    for (std::size_t j = open_brace; j < past; ++j) {
      if (punct_at(code, j, "{") || punct_at(code, j, "(")) ++depth;
      else if (punct_at(code, j, "}") || punct_at(code, j, ")")) --depth;
      else if (depth == 1 && ident_at(code, j, class_name) &&
               punct_at(code, j + 1, "(")) {
        return true;
      }
    }
    return false;
  }

  void check_class_body(const SourceFile& file, const std::vector<Token>& code,
                        const std::string& class_name, std::size_t open_brace,
                        std::vector<Finding>& out) const {
    const std::size_t past = skip_group(code, open_brace, "{", "}");
    if (has_user_ctor(code, class_name, open_brace, past)) return;

    std::size_t j = open_brace + 1;
    while (j + 1 < past) {
      if (punct_at(code, j, "{")) {  // nested class body: its own scan visits it
        j = skip_group(code, j, "{", "}");
        continue;
      }
      if (punct_at(code, j, ":")) {  // stray colon (labels)
        ++j;
        continue;
      }
      if ((ident_at(code, j, "public") || ident_at(code, j, "private") ||
           ident_at(code, j, "protected")) &&
          punct_at(code, j + 1, ":")) {
        j += 2;
        continue;
      }

      // Candidate member: [const] [std::] scalar-type+ [*]* name [array]
      // terminated by ';' with no initializer.
      std::size_t t = j;
      if (ident_at(code, t, "static") || ident_at(code, t, "constexpr") ||
          ident_at(code, t, "using") || ident_at(code, t, "typedef") ||
          ident_at(code, t, "friend") || ident_at(code, t, "mutable")) {
        j = next_statement(code, j, past);
        continue;
      }
      if (ident_at(code, t, "const")) ++t;
      if (ident_at(code, t, "std") && punct_at(code, t + 1, "::")) t += 2;
      if (t < past && code[t].kind == TokenKind::identifier &&
          is_scalar_type_name(code[t].text) &&
          !(t > 0 && punct_at(code, t - 1, "::") &&
            !(t >= 2 && ident_at(code, t - 2, "std")))) {
        // Consume multi-keyword types: `unsigned long`, `long long`, ...
        std::size_t u = t + 1;
        while (u < past && code[u].kind == TokenKind::identifier &&
               is_scalar_type_name(code[u].text)) {
          ++u;
        }
        bool pointer = false;
        while (punct_at(code, u, "*")) {
          pointer = true;
          ++u;
        }
        if (u < past && code[u].kind == TokenKind::identifier) {
          const Token& name = code[u];
          std::size_t after = u + 1;
          if (punct_at(code, after, "[")) after = skip_group(code, after, "[", "]");
          if (punct_at(code, after, ";")) {
            report(file, name.line,
                   "member '" + name.text + "' of constructor-less '" +
                       class_name + "' has no default initializer — a missed "
                       "brace-init field becomes " +
                       (pointer ? "a wild pointer" : "garbage") +
                       " (add '= 0' / '{}' or '// lint: init-ok(reason)')",
                   out);
          }
        }
      }
      j = next_statement(code, j, past);
    }
  }

  /// Advance past the current member declaration/definition: to just after
  /// the next `;` at this nesting level, skipping over balanced groups; a
  /// braced function body also ends the declaration.
  static std::size_t next_statement(const std::vector<Token>& code, std::size_t j,
                                    std::size_t past) {
    while (j < past) {
      if (punct_at(code, j, "(")) {
        j = skip_group(code, j, "(", ")");
      } else if (punct_at(code, j, "{")) {
        j = skip_group(code, j, "{", "}");
        // `= {...};` initializers still end at the ';'; a function body
        // ends the declaration right here.
        if (punct_at(code, j, ";")) return j + 1;
        return j;
      } else if (punct_at(code, j, ";")) {
        return j + 1;
      } else {
        ++j;
      }
    }
    return past;
  }
};

}  // namespace

std::unique_ptr<Rule> make_uninitialized_member_rule() {
  return std::make_unique<UninitializedMemberRule>();
}

}  // namespace halfback::lint
