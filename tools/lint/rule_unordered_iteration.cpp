// Rule "unordered-iteration": iterating an unordered container visits
// elements in hash-table order, which varies with load factor, libstdc++
// version, and insertion history — anything emitted from such a loop into a
// trace, a hash, or a results vector silently breaks bit-identical
// reproducibility. In the trace-hashed directories (src/exp, src/stats,
// src/audit) every range-for or .begin() over a variable declared with an
// unordered type must either go away or carry a "// lint: ordered-ok"
// justification explaining why order cannot reach any output.
#include <array>
#include <set>
#include <string>
#include <string_view>

#include "rules_internal.h"

namespace halfback::lint {
namespace {

using scan::ident_at;
using scan::punct_at;
using scan::skip_angles;

constexpr std::array<std::string_view, 4> kUnorderedTypes{
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

bool is_unordered_type_name(std::string_view t) {
  for (std::string_view u : kUnorderedTypes) {
    if (t == u) return true;
  }
  return false;
}

class UnorderedIterationRule final : public Rule {
 public:
  std::string_view id() const override { return "unordered-iteration"; }
  std::string_view description() const override {
    return "no iteration over unordered containers in trace-hashed paths "
           "(src/exp, src/stats, src/audit) without '// lint: ordered-ok'";
  }
  std::string_view suppression_tag() const override { return "ordered-ok"; }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.in_any_dir({"src/exp/", "src/stats/", "src/audit/"})) return;
    const auto& code = file.code();

    // Pass 1: names declared with an unordered type anywhere in this file
    // (members, locals, parameters). `std::unordered_map<K, V> name` — skip
    // the template arguments, then optional &/*, then the declared name.
    std::set<std::string> unordered_names;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i].kind != TokenKind::identifier ||
          !is_unordered_type_name(code[i].text)) {
        continue;
      }
      std::size_t j = i + 1;
      if (!punct_at(code, j, "<")) continue;
      const std::size_t past = skip_angles(code, j);
      if (past == j) continue;
      j = past;
      while (punct_at(code, j, "&") || punct_at(code, j, "*") ||
             ident_at(code, j, "const")) {
        ++j;
      }
      if (j < code.size() && code[j].kind == TokenKind::identifier) {
        unordered_names.insert(code[j].text);
      }
    }
    if (unordered_names.empty()) return;

    // Pass 2a: range-for whose range expression mentions one of the names.
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (!ident_at(code, i, "for") || !punct_at(code, i + 1, "(")) continue;
      const std::size_t past = scan::skip_group(code, i + 1, "(", ")");
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 1; j < past; ++j) {
        if (punct_at(code, j, "(")) ++depth;
        else if (punct_at(code, j, ")")) --depth;
        else if (depth == 1 && punct_at(code, j, ":")) { colon = j; break; }
      }
      if (colon == 0) continue;  // a classic for loop
      for (std::size_t j = colon + 1; j < past; ++j) {
        if (code[j].kind == TokenKind::identifier &&
            unordered_names.contains(code[j].text)) {
          report(file, code[i].line,
                 "range-for over unordered container '" + code[j].text +
                     "' — hash-table order is not deterministic across "
                     "builds; iterate a sorted view or justify with "
                     "'// lint: ordered-ok(reason)'",
                 out);
          break;
        }
      }
    }

    // Pass 2b: explicit iterator walks: name.begin() / cbegin / rbegin.
    for (std::size_t i = 0; i + 2 < code.size(); ++i) {
      if (code[i].kind != TokenKind::identifier ||
          !unordered_names.contains(code[i].text)) {
        continue;
      }
      if (!punct_at(code, i + 1, ".") && !punct_at(code, i + 1, "->")) continue;
      const std::string_view m = code[i + 2].text;
      if (m == "begin" || m == "cbegin" || m == "rbegin" || m == "crbegin") {
        report(file, code[i].line,
               "iterator walk over unordered container '" + code[i].text +
                   "' — hash-table order is not deterministic across builds",
               out);
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_unordered_iteration_rule() {
  return std::make_unique<UnorderedIterationRule>();
}

}  // namespace halfback::lint
