#include "rules.h"

#include "rules_internal.h"

namespace halfback::lint {

void Rule::report(const SourceFile& file, int line, std::string message,
                  std::vector<Finding>& out) const {
  const std::string_view tag = suppression_tag();
  if (!tag.empty() && file.suppressed(line, tag)) return;
  out.push_back(Finding{std::string{id()}, file.path(), line, std::move(message)});
}

const std::vector<std::unique_ptr<Rule>>& all_rules() {
  static const std::vector<std::unique_ptr<Rule>> rules = [] {
    std::vector<std::unique_ptr<Rule>> r;
    r.push_back(make_nondeterminism_rule());
    r.push_back(make_unordered_iteration_rule());
    r.push_back(make_raw_unit_type_rule());
    r.push_back(make_naked_new_delete_rule());
    r.push_back(make_uninitialized_member_rule());
    r.push_back(make_pragma_once_rule());
    r.push_back(make_hot_path_function_rule());
    r.push_back(make_noexcept_fire_rule());
    r.push_back(make_stdout_accounting_rule());
    return r;
  }();
  return rules;
}

std::vector<Finding> lint_file(const SourceFile& file, std::string_view only_rule) {
  std::vector<Finding> findings;
  for (const auto& rule : all_rules()) {
    if (!only_rule.empty() && rule->id() != only_rule) continue;
    rule->check(file, findings);
  }
  return findings;
}

namespace scan {

bool ident_at(const std::vector<Token>& code, std::size_t i, std::string_view text) {
  return i < code.size() && code[i].kind == TokenKind::identifier &&
         code[i].text == text;
}

bool punct_at(const std::vector<Token>& code, std::size_t i, std::string_view text) {
  return i < code.size() && code[i].kind == TokenKind::punct && code[i].text == text;
}

std::size_t skip_angles(const std::vector<Token>& code, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < code.size(); ++j) {
    if (punct_at(code, j, "<")) ++depth;
    else if (punct_at(code, j, ">")) {
      if (--depth == 0) return j + 1;
    } else if (punct_at(code, j, ";")) {
      break;  // statement ended without closing: not a template argument list
    }
  }
  return i;
}

std::size_t skip_group(const std::vector<Token>& code, std::size_t i,
                       std::string_view open, std::string_view close) {
  int depth = 0;
  for (std::size_t j = i; j < code.size(); ++j) {
    if (punct_at(code, j, open)) ++depth;
    else if (punct_at(code, j, close)) {
      if (--depth == 0) return j + 1;
    }
  }
  return code.size();
}

}  // namespace scan
}  // namespace halfback::lint
