// Rule framework: a Finding, the Rule interface, and the registry of all
// project rules. Rule semantics are documented in docs/static-analysis.md;
// tests/lint/ pins each rule's behaviour on fixture files.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "source_file.h"

namespace halfback::lint {

struct Finding {
  std::string rule;     ///< rule id, e.g. "nondeterminism"
  std::string path;     ///< logical (repo-relative) path
  int line = 0;
  std::string message;

  bool operator==(const Finding&) const = default;
};

class Rule {
 public:
  virtual ~Rule() = default;

  /// Stable id used in output, baselines, and `--rule` filters.
  virtual std::string_view id() const = 0;

  /// One-line description for `--list-rules`.
  virtual std::string_view description() const = 0;

  /// The suppression tag that silences this rule on a line ("" = none).
  virtual std::string_view suppression_tag() const = 0;

  /// Append findings for `file`. Implementations scope themselves (headers
  /// only, specific directories, annotated files) from file.path().
  virtual void check(const SourceFile& file, std::vector<Finding>& out) const = 0;

 protected:
  /// Emit unless the site carries this rule's suppression tag.
  void report(const SourceFile& file, int line, std::string message,
              std::vector<Finding>& out) const;
};

/// All rules, in the order they run and print.
const std::vector<std::unique_ptr<Rule>>& all_rules();

/// Run every rule (or just `only_rule`, when nonempty) over `file`.
std::vector<Finding> lint_file(const SourceFile& file, std::string_view only_rule = {});

}  // namespace halfback::lint
