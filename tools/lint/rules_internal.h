// Factories for the individual rules, consumed by the registry in
// rules.cpp. One translation unit per rule keeps each rule reviewable in
// isolation and its fixture test discoverable by name.
#pragma once

#include <memory>

#include "rules.h"

namespace halfback::lint {

std::unique_ptr<Rule> make_nondeterminism_rule();
std::unique_ptr<Rule> make_unordered_iteration_rule();
std::unique_ptr<Rule> make_raw_unit_type_rule();
std::unique_ptr<Rule> make_naked_new_delete_rule();
std::unique_ptr<Rule> make_uninitialized_member_rule();
std::unique_ptr<Rule> make_pragma_once_rule();
std::unique_ptr<Rule> make_hot_path_function_rule();
std::unique_ptr<Rule> make_noexcept_fire_rule();
std::unique_ptr<Rule> make_stdout_accounting_rule();

/// Shared token-scan helpers.
namespace scan {

/// True when code()[i] exists and equals an identifier `text`.
bool ident_at(const std::vector<Token>& code, std::size_t i, std::string_view text);

/// True when code()[i] exists and is punctuation `text`.
bool punct_at(const std::vector<Token>& code, std::size_t i, std::string_view text);

/// Index just past a balanced <...> opening at `i` (code[i] must be "<");
/// returns i when the angle brackets never close (malformed input).
std::size_t skip_angles(const std::vector<Token>& code, std::size_t i);

/// Index just past a balanced (...) / {...} / [...] group opening at `i`.
std::size_t skip_group(const std::vector<Token>& code, std::size_t i,
                       std::string_view open, std::string_view close);

}  // namespace scan

}  // namespace halfback::lint
