#include "runner.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "sim/annotations.h"

namespace halfback::lint {
namespace {

/// First-error capture for the worker pool (same shape as
/// exp::ErrorSlot — this is the annotation dogfood the --jobs satellite
/// exists for; the tsan CI leg runs the pool in anger).
class LintErrorSlot {
 public:
  void capture(std::string what) HB_EXCLUDES(mu_) {
    MutexLock lock{mu_};
    if (what_.empty()) what_ = std::move(what);
  }

  /// Called after all workers join; throws the first captured error.
  void rethrow_if_set() HB_EXCLUDES(mu_) {
    std::string what;
    {
      MutexLock lock{mu_};
      what = what_;
    }
    if (!what.empty()) throw std::runtime_error{what};
  }

 private:
  Mutex mu_;
  std::string what_ HB_GUARDED_BY(mu_);
};

}  // namespace

std::vector<std::filesystem::path> discover_files(
    const std::filesystem::path& root, const std::string& subdir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  const fs::path base = root / subdir;
  if (!fs::exists(base)) return files;
  for (const auto& entry : fs::recursive_directory_iterator{base}) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Finding> lint_path(const std::filesystem::path& file,
                               const std::string& logical_path,
                               std::string_view only_rule) {
  std::ifstream in{file, std::ios::binary};
  if (!in) throw std::runtime_error{"cannot read " + file.string()};
  std::ostringstream text;
  text << in.rdbuf();
  const SourceFile source{logical_path, std::move(text).str()};
  return lint_file(source, only_rule);
}

std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               std::string_view only_rule, int jobs) {
  const auto files = discover_files(root);
  // Each file owns a slot in the path-sorted order; workers fill slots in
  // whatever order the pool reaches them and the concatenation below
  // restores the deterministic sequence.
  std::vector<std::vector<Finding>> slots(files.size());
  auto lint_slot = [&](std::size_t i) {
    const std::string logical =
        std::filesystem::relative(files[i], root).generic_string();
    slots[i] = lint_path(files[i], logical, only_rule);
  };
  const std::size_t workers = std::min<std::size_t>(
      jobs < 1 ? 1 : static_cast<std::size_t>(jobs), files.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < files.size(); ++i) lint_slot(i);
  } else {
    std::atomic<std::size_t> next{0};
    LintErrorSlot first_error;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < files.size();
             i = next.fetch_add(1)) {
          try {
            lint_slot(i);
          } catch (const std::exception& e) {
            first_error.capture(e.what());
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    first_error.rethrow_if_set();
  }
  std::vector<Finding> findings;
  for (std::vector<Finding>& slot : slots) {
    findings.insert(findings.end(), std::make_move_iterator(slot.begin()),
                    std::make_move_iterator(slot.end()));
  }
  return findings;
}

}  // namespace halfback::lint
