#include "runner.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace halfback::lint {

std::vector<std::filesystem::path> discover_files(
    const std::filesystem::path& root, const std::string& subdir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  const fs::path base = root / subdir;
  if (!fs::exists(base)) return files;
  for (const auto& entry : fs::recursive_directory_iterator{base}) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Finding> lint_path(const std::filesystem::path& file,
                               const std::string& logical_path,
                               std::string_view only_rule) {
  std::ifstream in{file, std::ios::binary};
  if (!in) throw std::runtime_error{"cannot read " + file.string()};
  std::ostringstream text;
  text << in.rdbuf();
  const SourceFile source{logical_path, std::move(text).str()};
  return lint_file(source, only_rule);
}

std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               std::string_view only_rule) {
  std::vector<Finding> findings;
  for (const auto& file : discover_files(root)) {
    const std::string logical =
        std::filesystem::relative(file, root).generic_string();
    auto file_findings = lint_path(file, logical, only_rule);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

}  // namespace halfback::lint
