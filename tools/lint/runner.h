// File discovery and whole-tree linting, shared by the CLI and the tests.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "rules.h"

namespace halfback::lint {

/// All lintable files (*.h, *.cpp) under `root`/`subdir`, sorted by their
/// repo-relative path so output and finding order are deterministic.
std::vector<std::filesystem::path> discover_files(
    const std::filesystem::path& root, const std::string& subdir = "src");

/// Lint one on-disk file as `logical_path`. Throws std::runtime_error when
/// the file cannot be read.
std::vector<Finding> lint_path(const std::filesystem::path& file,
                               const std::string& logical_path,
                               std::string_view only_rule = {});

/// Lint every discovered file under root/src. Findings are ordered by path,
/// then by rule registration order within a file — regardless of `jobs`:
/// with jobs > 1 files are scanned by a worker pool, but every file has a
/// fixed slot in the path-sorted output, so parallel runs are byte-
/// identical to sequential ones.
std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               std::string_view only_rule = {}, int jobs = 1);

}  // namespace halfback::lint
