#include "source_file.h"

#include <algorithm>

namespace halfback::lint {
namespace {

bool contains_tag(std::string_view line, std::string_view tag) {
  // Look for "lint:" then the tag anywhere after it (so both
  // "// lint: ordered-ok" and "// lint: ordered-ok(sorted below)" match,
  // as does a tag list "lint: ordered-ok, unit-ok").
  const std::size_t at = line.find("lint:");
  return at != std::string_view::npos &&
         line.find(tag, at + 5) != std::string_view::npos;
}

}  // namespace

SourceFile::SourceFile(std::string logical_path, std::string text)
    : path_{std::move(logical_path)},
      text_{std::make_unique<std::string>(std::move(text))} {
  std::string_view rest = *text_;
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    lines_.push_back(rest.substr(0, nl));
    if (nl == std::string_view::npos) break;
    rest.remove_prefix(nl + 1);
  }
  tokens_ = tokenize(*text_);
  code_.reserve(tokens_.size());
  std::copy_if(tokens_.begin(), tokens_.end(), std::back_inserter(code_),
               [](const Token& t) {
                 return t.kind != TokenKind::comment &&
                        t.kind != TokenKind::pp_directive;
               });
}

bool SourceFile::is_header() const { return path_.ends_with(".h"); }

bool SourceFile::in_any_dir(std::initializer_list<std::string_view> prefixes) const {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](std::string_view p) { return path_.starts_with(p); });
}

bool SourceFile::suppressed(int line, std::string_view tag) const {
  return contains_tag(line_text(line), tag) || contains_tag(line_text(line - 1), tag);
}

bool SourceFile::annotated(std::string_view tag, int search_lines) const {
  for (const Token& t : tokens_) {
    if (t.line > search_lines) break;
    if (t.kind == TokenKind::comment && contains_tag(t.text, tag)) return true;
  }
  return false;
}

std::string_view SourceFile::line_text(int line) const {
  if (line < 1 || static_cast<std::size_t>(line) > lines_.size()) return {};
  return lines_[static_cast<std::size_t>(line) - 1];
}

}  // namespace halfback::lint
