// A lint input: one file's tokens plus the raw line text, with helpers for
// the suppression-comment and file-annotation conventions described in
// docs/static-analysis.md.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "token.h"

namespace halfback::lint {

class SourceFile {
 public:
  /// `logical_path` is the repo-relative path rules scope on (e.g.
  /// "src/exp/planetlab.cpp"). Fixture tests lint files that live under
  /// tests/ but pose as src/ files through this parameter.
  SourceFile(std::string logical_path, std::string text);

  const std::string& path() const { return path_; }
  const std::vector<Token>& tokens() const { return tokens_; }

  /// Code tokens only (comments stripped) — what most rules scan.
  const std::vector<Token>& code() const { return code_; }

  bool is_header() const;

  /// True if path() starts with any of `prefixes`.
  bool in_any_dir(std::initializer_list<std::string_view> prefixes) const;

  /// Suppression check: the finding's own line, or the line directly above
  /// it, carries a comment containing "lint: <tag>".
  bool suppressed(int line, std::string_view tag) const;

  /// File-level annotation: a comment within the first `search_lines` lines
  /// contains "lint: <tag>" (e.g. "lint: hot-path").
  bool annotated(std::string_view tag, int search_lines = 40) const;

  /// Raw text of 1-based line `line` ("" out of range).
  std::string_view line_text(int line) const;

 private:
  std::string path_;
  /// Owned behind a pointer so the buffer never moves: `lines_` and the
  /// token texts are views into it, and a SourceFile is moved when stored
  /// (ProjectModel keeps them in a vector). A plain std::string would
  /// relocate its SSO buffer on move and dangle every view for any file
  /// short enough to fit inline.
  std::unique_ptr<std::string> text_;
  std::vector<std::string_view> lines_;  ///< views into *text_
  std::vector<Token> tokens_;            ///< full stream, comments included
  std::vector<Token> code_;              ///< comments and pp directives stripped
};

}  // namespace halfback::lint
