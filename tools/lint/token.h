// Token model for halfback-lint.
//
// The linter never parses C++ properly; it pattern-matches over a token
// stream that is *faithful about what is code and what is not*: comments,
// string literals (including raw strings), character literals, and
// preprocessor directives are each single tokens, so a rule looking for
// `rand(` can never fire on a word inside a comment or a log message.
#pragma once

#include <string>
#include <vector>

namespace halfback::lint {

enum class TokenKind {
  identifier,   ///< keywords are identifiers too; rules match by text
  number,       ///< pp-number: covers 0x1f, 1e-9, 100'000, 1.5f, ...
  string_lit,   ///< "..." including raw strings and encoding prefixes
  char_lit,     ///< '...'
  punct,        ///< single punctuation char, plus the digraphs "::" and "->"
  pp_directive, ///< a whole preprocessor line (continuations folded in)
  comment,      ///< // or /* */, kept for annotation/suppression scans
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character

  bool is(TokenKind k, std::string_view t) const { return kind == k && text == t; }
  bool ident(std::string_view t) const { return is(TokenKind::identifier, t); }
  bool punct_is(std::string_view t) const { return is(TokenKind::punct, t); }
};

/// Tokenize `text`. Never fails: malformed input degrades to best-effort
/// tokens rather than an error, because the linter must keep scanning the
/// rest of a file that (say) a merge conflict mangled.
std::vector<Token> tokenize(std::string_view text);

}  // namespace halfback::lint
