#include "token.h"

#include <cctype>

namespace halfback::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_{text} {}

  std::vector<Token> run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        pp_directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        line_comment();
      } else if (c == '/' && peek(1) == '*') {
        block_comment();
      } else if (is_raw_string_start()) {
        raw_string();
      } else if (c == '"' || is_prefixed_string()) {
        string_literal();
      } else if (c == '\'') {
        char_literal();
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
      } else if (ident_start(c)) {
        identifier();
      } else {
        punct();
      }
    }
    return std::move(tokens_);
  }

 private:
  /// Character at pos_ + offset, '\0' when out of range (offset may be
  /// negative, for exponent-sign lookbehind).
  char peek(std::ptrdiff_t offset = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(offset);
    return i < text_.size() ? text_[i] : '\0';
  }

  void emit(TokenKind kind, std::size_t begin, int line) {
    tokens_.push_back(Token{kind, std::string{text_.substr(begin, pos_ - begin)}, line});
  }

  void advance_counting_newlines() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }

  /// A whole `#...` line, folding backslash continuations so `#pragma once`
  /// split across lines is still one token. Comments on the line are left
  /// inside the text; directive matchers normalize whitespace anyway.
  void pp_directive() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\\' && peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      if (text_[pos_] == '\n') break;
      // A block comment may hide the newline: /* ... \n ... */
      if (text_[pos_] == '/' && peek(1) == '*') {
        pos_ += 2;
        while (pos_ < text_.size() && !(text_[pos_] == '*' && peek(1) == '/')) {
          advance_counting_newlines();
        }
        if (pos_ < text_.size()) pos_ += 2;
        continue;
      }
      ++pos_;
    }
    emit(TokenKind::pp_directive, begin, line);
  }

  void line_comment() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    emit(TokenKind::comment, begin, line);
  }

  void block_comment() {
    const std::size_t begin = pos_;
    const int line = line_;
    pos_ += 2;
    while (pos_ < text_.size() && !(text_[pos_] == '*' && peek(1) == '/')) {
      advance_counting_newlines();
    }
    if (pos_ < text_.size()) pos_ += 2;
    emit(TokenKind::comment, begin, line);
  }

  /// R"delim( ... )delim" with optional encoding prefix (u8R", LR", ...).
  bool is_raw_string_start() const {
    std::size_t i = pos_;
    if (text_[i] == 'u' && i + 1 < text_.size() && text_[i + 1] == '8') i += 2;
    else if (text_[i] == 'u' || text_[i] == 'U' || text_[i] == 'L') i += 1;
    return i + 1 < text_.size() && text_[i] == 'R' && text_[i + 1] == '"';
  }

  bool is_prefixed_string() const {
    std::size_t i = pos_;
    if (text_[i] == 'u' && i + 1 < text_.size() && text_[i + 1] == '8') i += 2;
    else if (text_[i] == 'u' || text_[i] == 'U' || text_[i] == 'L') i += 1;
    else return false;
    return i < text_.size() && text_[i] == '"';
  }

  void raw_string() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;  // prefix + R
    ++pos_;                                                    // opening quote
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') delim += text_[pos_++];
    const std::string closer = ")" + delim + "\"";
    while (pos_ < text_.size() && text_.substr(pos_, closer.size()) != closer) {
      advance_counting_newlines();
    }
    pos_ = pos_ < text_.size() ? pos_ + closer.size() : text_.size();
    emit(TokenKind::string_lit, begin, line);
  }

  void string_literal() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;  // encoding prefix
    ++pos_;                                                    // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      advance_counting_newlines();
    }
    if (pos_ < text_.size()) ++pos_;
    emit(TokenKind::string_lit, begin, line);
  }

  void char_literal() {
    const std::size_t begin = pos_;
    const int line = line_;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      advance_counting_newlines();
    }
    if (pos_ < text_.size()) ++pos_;
    emit(TokenKind::char_lit, begin, line);
  }

  /// pp-number: digits, identifier chars, quotes-as-digit-separators, dots,
  /// and exponent signs. Deliberately permissive — `1e-9`, `0x1fULL`,
  /// `100'000`, `1.5e+3f` are each one token.
  void number() {
    const std::size_t begin = pos_;
    const int line = line_;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (ident_char(c) || c == '.') {
        ++pos_;
      } else if (c == '\'' && ident_char(peek(1))) {
        pos_ += 2;
      } else if ((c == '+' || c == '-') &&
                 (peek(-1) == 'e' || peek(-1) == 'E' || peek(-1) == 'p' ||
                  peek(-1) == 'P')) {
        ++pos_;
      } else {
        break;
      }
    }
    emit(TokenKind::number, begin, line);
  }

  void identifier() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < text_.size() && ident_char(text_[pos_])) ++pos_;
    emit(TokenKind::identifier, begin, line);
  }

  void punct() {
    const std::size_t begin = pos_;
    const int line = line_;
    if (text_[pos_] == ':' && peek(1) == ':') {
      pos_ += 2;
    } else if (text_[pos_] == '-' && peek(1) == '>') {
      pos_ += 2;
    } else {
      ++pos_;
    }
    emit(TokenKind::punct, begin, line);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> tokenize(std::string_view text) { return Lexer{text}.run(); }

}  // namespace halfback::lint
