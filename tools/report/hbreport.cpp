// hbreport: render the telemetry JSONL artifacts as tail-latency tables.
//
//   hbreport STEM...                    reads STEM.metrics.jsonl and
//                                       STEM.spans.jsonl (either optional)
//   hbreport --fct=FILE --phases=FILE   name the artifacts explicitly
//
// For each input it prints the per-percentile FCT/RTT table (p50/p90/p99/
// p99.9, from the histograms the simulation recorded) and the per-phase
// time-attribution breakdown (from the causal span log). Exit status is
// nonzero when any named input is missing or malformed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "report_lib.h"

namespace {

using halfback::report::MetricsDigest;
using halfback::report::SpanLog;

bool report_metrics(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "hbreport: cannot open %s\n", path.c_str());
    return false;
  }
  const MetricsDigest digest = halfback::report::load_metrics(in);
  for (const std::string& error : digest.errors) {
    std::fprintf(stderr, "hbreport: %s: %s\n", path.c_str(), error.c_str());
  }
  std::printf("latency percentiles — %s\n", path.c_str());
  halfback::report::percentile_table(digest.histograms).print();
  std::printf("\n");
  return digest.errors.empty();
}

bool report_phases(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "hbreport: cannot open %s\n", path.c_str());
    return false;
  }
  const SpanLog log = halfback::report::load_spans(in);
  for (const std::string& error : log.errors) {
    std::fprintf(stderr, "hbreport: %s: %s\n", path.c_str(), error.c_str());
  }
  std::printf("phase time attribution — %s\n", path.c_str());
  halfback::report::phase_table(log.spans).print();
  if (log.dropped != 0) {
    std::printf("(span recorder dropped %llu spans at capacity)\n",
                static_cast<unsigned long long>(log.dropped));
  }
  std::printf("\n");
  return log.errors.empty();
}

bool exists(const std::string& path) {
  std::ifstream in{path};
  return static_cast<bool>(in);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> metrics_files;
  std::vector<std::string> span_files;
  std::vector<std::string> stems;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--fct=", 0) == 0) {
      metrics_files.push_back(arg.substr(std::strlen("--fct=")));
    } else if (arg.rfind("--phases=", 0) == 0) {
      span_files.push_back(arg.substr(std::strlen("--phases=")));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: hbreport [--fct=metrics.jsonl] [--phases=spans.jsonl] "
          "[STEM...]\n"
          "STEM expands to STEM.metrics.jsonl + STEM.spans.jsonl.\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "hbreport: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      stems.push_back(arg);
    }
  }
  if (metrics_files.empty() && span_files.empty() && stems.empty()) {
    std::fprintf(stderr, "hbreport: no inputs (see --help)\n");
    return 2;
  }
  bool ok = true;
  for (const std::string& stem : stems) {
    const std::string metrics = stem + ".metrics.jsonl";
    const std::string spans = stem + ".spans.jsonl";
    // A stem must resolve to at least one artifact; silently skipping a
    // typo'd stem would report an empty run as a healthy one.
    if (!exists(metrics) && !exists(spans)) {
      std::fprintf(stderr, "hbreport: no artifacts for stem %s\n",
                   stem.c_str());
      ok = false;
      continue;
    }
    if (exists(metrics)) ok = report_metrics(metrics) && ok;
    if (exists(spans)) ok = report_phases(spans) && ok;
  }
  for (const std::string& path : metrics_files) ok = report_metrics(path) && ok;
  for (const std::string& path : span_files) ok = report_phases(path) && ok;
  return ok ? 0 : 1;
}
