#include "report_lib.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>

namespace halfback::report {
namespace {

/// Recursive-descent reader over the exporters' JSON subset (which is
/// plain RFC 8259 minus exotic number forms the exporters never emit).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> v = value();
    skip_ws();
    if (v.has_value() && pos_ != text_.size()) {
      fail("trailing characters after document");
      v.reset();
    }
    if (!v.has_value() && error != nullptr) *error = error_;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void fail(const std::string& reason) {
    if (error_.empty()) {
      error_ = reason + " at offset " + std::to_string(pos_);
    }
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null_value();
    return number();
  }

  std::optional<JsonValue> object() {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::object;
    if (eat('}')) return v;
    while (true) {
      skip_ws();
      std::optional<JsonValue> key = string_value();
      if (!key.has_value()) return std::nullopt;
      if (!eat(':')) {
        fail("expected ':' in object");
        return std::nullopt;
      }
      std::optional<JsonValue> member = value();
      if (!member.has_value()) return std::nullopt;
      v.members.emplace_back(std::move(key->string_value),
                             std::move(*member));
      if (eat(',')) continue;
      if (eat('}')) return v;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> array() {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::array;
    if (eat(']')) return v;
    while (true) {
      std::optional<JsonValue> item = value();
      if (!item.has_value()) return std::nullopt;
      v.items.push_back(std::move(*item));
      if (eat(',')) continue;
      if (eat(']')) return v;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> string_value() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return std::nullopt;
    }
    ++pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::string;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string_value += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string_value += '"'; break;
        case '\\': v.string_value += '\\'; break;
        case '/': v.string_value += '/'; break;
        case 'n': v.string_value += '\n'; break;
        case 'r': v.string_value += '\r'; break;
        case 't': v.string_value += '\t'; break;
        case 'b': v.string_value += '\b'; break;
        case 'f': v.string_value += '\f'; break;
        case 'u': {
          // The exporters only escape control characters, all below
          // U+0080 — decode the code unit as a single byte.
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          const std::string hex{text_.substr(pos_, 4)};
          v.string_value +=
              static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          pos_ += 4;
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::boolean;
    if (text_.substr(pos_, 4) == "true") {
      v.bool_value = true;
      pos_ += 4;
      return v;
    }
    if (text_.substr(pos_, 5) == "false") {
      v.bool_value = false;
      pos_ += 5;
      return v;
    }
    fail("expected boolean");
    return std::nullopt;
  }

  std::optional<JsonValue> null_value() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{};
    }
    fail("expected null");
    return std::nullopt;
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("expected value");
      return std::nullopt;
    }
    const std::string token{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number");
      return std::nullopt;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::number;
    v.number_value = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

constexpr double kNsPerMs = 1e6;

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, member] : members) {
    if (name == key) return &member;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::number ? v->number_value : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::string ? v->string_value
                                                 : std::string{fallback};
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::boolean ? v->bool_value : fallback;
}

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  return Parser{text}.parse(error);
}

MetricsDigest load_metrics(std::istream& in) {
  MetricsDigest digest;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string error;
    std::optional<JsonValue> v = parse_json(line, &error);
    if (!v.has_value() || v->kind != JsonValue::Kind::object) {
      digest.errors.push_back("line " + std::to_string(line_no) + ": " +
                              (error.empty() ? "not an object" : error));
      continue;
    }
    const std::string kind = v->string_or("kind", "");
    const std::string name = v->string_or("name", "");
    if (kind == "histogram") {
      HistogramDigest h;
      h.name = name;
      h.unit = v->string_or("unit", "");
      h.count = static_cast<std::uint64_t>(v->number_or("count", 0.0));
      h.sum = v->number_or("sum", 0.0);
      h.min = v->number_or("min", 0.0);
      h.max = v->number_or("max", 0.0);
      h.p50 = v->number_or("p50", 0.0);
      h.p90 = v->number_or("p90", 0.0);
      h.p99 = v->number_or("p99", 0.0);
      h.p999 = v->number_or("p999", 0.0);
      digest.histograms.push_back(std::move(h));
    } else if (kind == "counter" || kind == "gauge") {
      digest.scalars.emplace_back(name, v->number_or("value", 0.0));
    }
  }
  return digest;
}

SpanLog load_spans(std::istream& in) {
  SpanLog log;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string error;
    std::optional<JsonValue> v = parse_json(line, &error);
    if (!v.has_value() || v->kind != JsonValue::Kind::object) {
      log.errors.push_back("line " + std::to_string(line_no) + ": " +
                           (error.empty() ? "not an object" : error));
      continue;
    }
    if (v->find("span_count") != nullptr) {
      // Footer line: recorder totals.
      log.dropped = static_cast<std::uint64_t>(v->number_or("dropped", 0.0));
      continue;
    }
    SpanRow row;
    row.id = static_cast<std::uint32_t>(v->number_or("span", 0.0));
    row.parent = static_cast<std::uint32_t>(v->number_or("parent", 0.0));
    row.flow = static_cast<std::uint64_t>(v->number_or("flow", 0.0));
    row.kind = v->string_or("kind", "");
    row.begin_ns = static_cast<std::int64_t>(v->number_or("begin_ns", 0.0));
    row.end_ns = static_cast<std::int64_t>(v->number_or("end_ns", 0.0));
    row.open = v->bool_or("open", false);
    row.abandoned = v->bool_or("abandoned", false);
    log.spans.push_back(std::move(row));
  }
  return log;
}

stats::Table percentile_table(
    const std::vector<HistogramDigest>& histograms) {
  stats::Table table{{"metric", "count", "p50 (ms)", "p90 (ms)", "p99 (ms)",
                      "p99.9 (ms)", "max (ms)"}};
  for (const HistogramDigest& h : histograms) {
    if (!ends_with(h.name, "_ns")) continue;
    table.add_row({h.name, std::to_string(h.count),
                   stats::Table::num(h.p50 / kNsPerMs, 3),
                   stats::Table::num(h.p90 / kNsPerMs, 3),
                   stats::Table::num(h.p99 / kNsPerMs, 3),
                   stats::Table::num(h.p999 / kNsPerMs, 3),
                   stats::Table::num(h.max / kNsPerMs, 3)});
  }
  return table;
}

stats::Table phase_table(const std::vector<SpanRow>& spans) {
  struct Bucket {
    std::uint64_t episodes = 0;
    std::uint64_t abandoned = 0;
    double total_ns = 0.0;
  };
  // std::map: deterministic kind order regardless of input order.
  std::map<std::string, Bucket> buckets;
  double flow_total_ns = 0.0;
  for (const SpanRow& span : spans) {
    const double duration =
        static_cast<double>(span.end_ns - span.begin_ns);
    if (span.kind == "flow") {
      flow_total_ns += duration;
      continue;
    }
    Bucket& b = buckets[span.kind];
    b.episodes += 1;
    if (span.abandoned) b.abandoned += 1;
    b.total_ns += duration;
  }
  stats::Table table{{"phase", "episodes", "abandoned", "total (ms)",
                      "mean (ms)", "share of flow time"}};
  for (const auto& [kind, b] : buckets) {
    const double mean =
        b.episodes == 0 ? 0.0 : b.total_ns / static_cast<double>(b.episodes);
    const double share =
        flow_total_ns <= 0.0 ? 0.0 : b.total_ns / flow_total_ns * 100.0;
    table.add_row({kind, std::to_string(b.episodes),
                   std::to_string(b.abandoned),
                   stats::Table::num(b.total_ns / kNsPerMs, 3),
                   stats::Table::num(mean / kNsPerMs, 3),
                   stats::Table::num(share, 1) + "%"});
  }
  return table;
}

}  // namespace halfback::report
