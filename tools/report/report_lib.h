// hbreport core: turn the telemetry JSONL artifacts (telemetry/export.h)
// back into human-readable tail-latency tables.
//
// The exporters write line-oriented JSON with a small, fixed vocabulary;
// this library carries its own minimal JSON reader so the report tool
// builds anywhere the simulator builds, with no third-party dependency.
// It is deliberately a *reader of our own artifacts*, not a general JSON
// library: unknown keys are ignored, missing keys get zero defaults, and
// a malformed line is reported by line number instead of best-guessed.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/table.h"

namespace halfback::report {

/// A parsed JSON value. Objects keep member order (the exporters emit
/// deterministic key order; keeping it makes round-trip tests readable).
struct JsonValue {
  enum class Kind { null_value, boolean, number, string, array, object };
  Kind kind = Kind::null_value;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                                // array
  std::vector<std::pair<std::string, JsonValue>> members;      // object

  /// First member named `key`, or nullptr.
  const JsonValue* find(std::string_view key) const;
  /// Member `key` as a number, or `fallback` when absent / not a number.
  double number_or(std::string_view key, double fallback) const;
  /// Member `key` as a string, or `fallback` when absent / not a string.
  std::string string_or(std::string_view key, std::string_view fallback) const;
  /// Member `key` as a bool, or `fallback` when absent / not a bool.
  bool bool_or(std::string_view key, bool fallback) const;
};

/// Parse one JSON document. Returns nullopt (with a one-line reason in
/// `*error` when given) on malformed input or trailing junk.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

/// One histogram line of a metrics.jsonl artifact, percentiles included
/// (the exporter computes them via Histogram::value_at_quantile, so the
/// report shows exactly what the simulation measured).
struct HistogramDigest {
  std::string name;
  std::string unit;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Everything hbreport needs from a metrics.jsonl stream. Counters and
/// gauges ride along as name/value pairs for the summary footer.
struct MetricsDigest {
  std::vector<HistogramDigest> histograms;
  std::vector<std::pair<std::string, double>> scalars;
  std::vector<std::string> errors;  ///< "line N: reason" per bad line
};

MetricsDigest load_metrics(std::istream& in);

/// One span line of a spans.jsonl artifact (telemetry/span.h kinds).
struct SpanRow {
  std::uint32_t id = 0;
  std::uint32_t parent = 0;
  std::uint64_t flow = 0;
  std::string kind;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  bool open = false;
  bool abandoned = false;
};

struct SpanLog {
  std::vector<SpanRow> spans;
  std::uint64_t dropped = 0;  ///< recorder-capacity overflow, from the footer
  std::vector<std::string> errors;
};

SpanLog load_spans(std::istream& in);

/// Tail-latency table: one row per `*_ns` histogram, converted to
/// milliseconds — count, p50, p90, p99, p99.9, max. The flow-completion
/// row is what the paper's figures report; RTT rows ride along.
stats::Table percentile_table(const std::vector<HistogramDigest>& histograms);

/// Per-phase time attribution: one row per span kind — episode count,
/// total time, mean per episode, and share of the summed flow-span time.
/// Phase spans partition each flow's lifetime; rto_recovery episodes
/// overlap the phase they interrupt, so shares can sum past 100%.
stats::Table phase_table(const std::vector<SpanRow>& spans);

}  // namespace halfback::report
